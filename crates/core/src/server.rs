//! The long-running multi-tenant query server behind
//! `visualroad serve`.
//!
//! The batch CLI runs one benchmark and exits; this module keeps the
//! same engines resident and serves query requests from many
//! concurrent client sessions over the loopback TCP substrate
//! established by `vr-base::obs::serve`. Every request carries a
//! tenant id, a priority class, and an optional deadline, and passes
//! through the [`vr_base::admission`] controller before it may touch
//! an engine — that layer (bounded queue, per-tenant quotas,
//! priority-aware shedding, per-tenant circuit breakers, drain) is
//! what makes the server safe to overload.
//!
//! ## Wire protocol
//!
//! Line-based, one request per line, one response line per request
//! (the `STATS` body is JSON compacted onto its line). Requests:
//!
//! ```text
//! EXEC tenant=<id> priority=<high|low> query=<Q1|Q2a|...|S1|S2|S3>
//!      [engine=<name>] [deadline_ms=<n>] [online=<speedup>]
//! STATS
//! HEALTH
//! SHUTDOWN
//! ```
//!
//! Responses:
//!
//! ```text
//! OK tenant=<id> query=<q> engine=<e> latency_us=<n> degraded=<0|1> route=<index|rescan>
//! SHED reason=<saturated|queue_full|quota|breaker_open|draining|deadline_expired>
//! CANCELLED tenant=<id> query=<q> latency_us=<n>
//! ERR <message>
//! STATS <one-line json>
//! OK active=<n> queued=<n> draining=<0|1>      (HEALTH)
//! OK draining                                  (SHUTDOWN)
//! ```
//!
//! The semantic query class `S1` (count) / `S2` (top-k segments) /
//! `S3` (similarity) is answered from the ingested side index when the
//! cost-based optimizer picks it (`route=index`; no frame decoded) and
//! by a metadata rescan otherwise. Every `OK` reports its route, and
//! the per-tenant admission accounting splits `index_served` vs
//! `rescan_served` so drivers can cross-check the ledger exactly.
//!
//! `EXEC` executes a pregenerated query instance (round-robin over a
//! per-query pool sampled exactly like the batch driver's `4·L`
//! batches, so the server and the benchmark measure the same work).
//! A request admitted *degraded* runs with a single pipeline worker —
//! the cheap configuration — and reports `degraded=1`. A deadline is
//! armed on the instance's `CancelToken`, so past-deadline work
//! unwinds cooperatively and answers `CANCELLED` instead of holding
//! its slot. `online=<speedup>` streams the instance's inputs through
//! the paced RTP ingest first (the online half of a mixed workload).
//!
//! `SHUTDOWN` begins a graceful drain: admission stops (queued
//! waiters are refused `draining`), in-flight requests finish (their
//! own deadlines cancel past-deadline work), and once idle — or after
//! the drain timeout — the listener closes. [`QueryServer::wait`]
//! reports whether the drain was clean.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vr_base::admission::{AdmissionConfig, AdmissionController, Priority, ShedReason};
use vr_base::obs::qlog::{self, Outcome, QueryLog, RequestCtx, RequestRecord};
use vr_base::obs::slo::{SloConfig, SloTracker};
use vr_base::obs::{metrics, serve, trace};
use vr_base::sync::CancelToken;
use vr_base::Error;
use vr_index::SemanticIndex;
use vr_vdbms::{
    CalibrationProfile, ExecContext, Optimizer, PipelineMetrics, QueryInstance, QueryKind, Vdbms,
    Workload,
};

use crate::dataset::Dataset;
use crate::semantic::{
    answer_with_index, answer_with_rescan, decide_route, ingest_dataset, validate_index,
    SemanticQuery,
};
use crate::vcd::{ingest_online, Vcd, VcdConfig};

/// Server configuration: the admission policy plus execution defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on loopback (0 picks an ephemeral port).
    pub port: u16,
    /// Admission policy (queue, quotas, thresholds, breakers).
    pub admission: AdmissionConfig,
    /// Pipeline workers for a normally admitted request.
    pub workers: usize,
    /// Pipeline workers for a request admitted degraded (the cheap
    /// configuration low-priority work falls back to under load).
    pub degraded_workers: usize,
    /// Deadline applied to `EXEC` requests that carry none.
    pub default_deadline: Option<Duration>,
    /// How long a drain may wait for in-flight work before giving up.
    pub drain_timeout: Duration,
    /// Query kinds the server pregenerates instance pools for.
    pub queries: Vec<QueryKind>,
    /// Ingest a semantic side index at startup so the S1/S2/S3 query
    /// class is served from it (route=index) instead of by rescan.
    pub use_index: bool,
    /// Load a prebuilt `.vrsx` side index instead of ingesting. An
    /// unusable (corrupt/truncated/stale) file fails CLOSED: the
    /// server logs a warning and serves semantic queries by rescan.
    pub index_path: Option<String>,
    /// JSONL sink for the structured query log (`--qlog-out`). The
    /// in-memory ring behind `/requests` is kept either way.
    pub qlog_path: Option<String>,
    /// Slow-query threshold: a completed request at or above it gets a
    /// full `EXPLAIN ANALYZE` exemplar embedded in its log record.
    /// `None` disables exemplar capture.
    pub slow_query: Option<Duration>,
    /// Per-priority latency objectives and error-budget policy for the
    /// SLO tracker behind `/slo` and the `STATS` `slo` block.
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            port: 0,
            admission: AdmissionConfig::default(),
            workers: vr_base::sync::worker_budget(),
            degraded_workers: 1,
            default_deadline: None,
            drain_timeout: Duration::from_secs(10),
            queries: vec![QueryKind::Q1Select, QueryKind::Q2aGrayscale, QueryKind::Q2cBoxes],
            use_index: false,
            index_path: None,
            qlog_path: None,
            slow_query: None,
            slo: SloConfig::default(),
        }
    }
}

/// Outcome of a completed server run (after drain).
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Whether every in-flight request finished inside the drain
    /// timeout.
    pub clean: bool,
    /// Final admission accounting (the same JSON `STATS` serves).
    pub stats_json: String,
}

/// One pregenerated query pool: the driver-equivalent instances plus
/// a round-robin cursor.
struct Pool {
    instances: Vec<QueryInstance>,
    next: AtomicUsize,
}

/// State shared by every connection handler.
struct Shared {
    dataset: Dataset,
    engines: BTreeMap<String, Box<dyn Vdbms>>,
    default_engine: String,
    pools: BTreeMap<QueryKind, Pool>,
    admission: Arc<AdmissionController>,
    /// Loaded semantic side index, when one ingested/validated cleanly
    /// at startup. `None` means semantic queries run by rescan.
    index: Option<SemanticIndex>,
    /// Cost-based router for the semantic query class (decisions are
    /// cached per query label, so the probe-vs-rescan comparison runs
    /// once and EXPLAIN can render it).
    optimizer: Optimizer,
    /// Structured query log: one record per request that reached
    /// admission, appended at settlement (before the response line is
    /// written, so drivers can reconcile log vs ledger exactly).
    qlog: Arc<QueryLog>,
    /// Per-tenant/priority latency objectives and burn rates.
    slo: Arc<SloTracker>,
    /// Arrival-order request id mint (1-based, deterministic for a
    /// deterministic request sequence).
    next_request: AtomicU64,
    cfg: ServerConfig,
    /// Set once the drain (or a stop) finished; the accept loop and
    /// every connection thread exit on it.
    shutdown: AtomicBool,
    /// Whether the drain reached idle inside its timeout.
    drained_clean: AtomicBool,
}

/// A running query server. Stop it with a `SHUTDOWN` request, or
/// programmatically with [`QueryServer::shutdown`]; then [`wait`]
/// (QueryServer::wait) for the drain verdict.
pub struct QueryServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Bind `127.0.0.1:port`, pregenerate the query pools, and serve
    /// until a `SHUTDOWN` request (or [`shutdown`](Self::shutdown))
    /// drains the server.
    pub fn start(
        dataset: Dataset,
        engines: Vec<Box<dyn Vdbms>>,
        cfg: ServerConfig,
    ) -> vr_base::Result<Self> {
        if engines.is_empty() {
            return Err(Error::InvalidConfig("server needs at least one engine".into()));
        }
        // The pools reuse the driver's deterministic instance sampler,
        // so a server request measures exactly the work a benchmark
        // batch instance does.
        let mut pools = BTreeMap::new();
        {
            let vcd = Vcd::new(&dataset, VcdConfig::default());
            for &kind in &cfg.queries {
                let instances = vcd.batch(kind)?;
                pools.insert(kind, Pool { instances, next: AtomicUsize::new(0) });
            }
        }
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))
            .map_err(Error::Io)?;
        let addr = listener.local_addr().map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;

        // Report names like "batch (Scanner-like)" would break the
        // space-separated wire protocol; key engines by their first
        // word ("batch"), which is also what the CLI's --engine takes.
        let short = |e: &dyn Vdbms| {
            e.name().split_whitespace().next().unwrap_or("engine").to_string()
        };
        let default_engine = short(engines[0].as_ref());
        let engines: BTreeMap<String, Box<dyn Vdbms>> =
            engines.into_iter().map(|e| (short(e.as_ref()), e)).collect();

        // Semantic side index: ingest at startup (--use-index) or load
        // a prebuilt file (--index). Unusable files fail closed into
        // rescan — a warning, never a refused start or a wrong answer.
        let index = if cfg.use_index || cfg.index_path.is_some() {
            let loaded = match &cfg.index_path {
                Some(path) => std::fs::read(path)
                    .map_err(Error::Io)
                    .and_then(|bytes| SemanticIndex::from_sidecar_bytes(&bytes))
                    .and_then(|idx| validate_index(&idx, &dataset).map(|()| idx)),
                None => ingest_dataset(&dataset).map(|(idx, _)| idx),
            };
            match loaded {
                Ok(idx) => {
                    eprintln!("semantic index ready: {} tracklets", idx.len());
                    Some(idx)
                }
                Err(e) => {
                    eprintln!(
                        "warning: semantic index unusable ({e}); serving semantic queries by rescan"
                    );
                    None
                }
            }
        } else {
            None
        };
        let frames: u64 = dataset
            .traffic_indices()
            .iter()
            .map(|&vi| dataset.videos[vi].frame_count() as u64)
            .sum();
        let optimizer = Optimizer::new(CalibrationProfile::builtin()).with_workload(Workload {
            width: dataset.hyper.resolution.width,
            height: dataset.hyper.resolution.height,
            frames,
        });

        let qlog = Arc::new(
            QueryLog::open(cfg.qlog_path.as_deref(), cfg.slow_query).map_err(Error::Io)?,
        );
        let slo = Arc::new(SloTracker::new(cfg.slo.clone()));
        // Publish the live views on the loopback metrics endpoint.
        // The view registry is process-global like the registry
        // itself: with several servers in one process the last
        // registration wins, and views stay registered after drain
        // (a stale closure only holds an `Arc` of a quiet log).
        {
            let view_log = Arc::clone(&qlog);
            serve::set_view("/requests", "application/jsonl; charset=utf-8", move || {
                view_log.recent_jsonl()
            });
            let view_slo = Arc::clone(&slo);
            serve::set_view("/slo", "application/json; charset=utf-8", move || {
                view_slo.render_json()
            });
        }

        let shared = Arc::new(Shared {
            dataset,
            engines,
            default_engine,
            pools,
            admission: Arc::new(AdmissionController::new(cfg.admission.clone())),
            index,
            optimizer,
            qlog,
            slo,
            next_request: AtomicU64::new(0),
            cfg,
            shutdown: AtomicBool::new(false),
            drained_clean: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("vr-query-serve".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(Error::Io)?;
        Ok(Self { addr, shared, accept_handle: Some(accept_handle) })
    }

    /// The bound address (real port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Begin a graceful drain from the owning process (equivalent to
    /// a `SHUTDOWN` request).
    pub fn shutdown(&self) {
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name("vr-query-drain".to_string())
            .spawn(move || drain(&shared))
            .map(|_| ())
            .unwrap_or_else(|_| drain(&self.shared));
    }

    /// A cloneable trigger another thread can use to start the drain
    /// while the owner blocks in [`wait`](Self::wait) — the CLI's
    /// stdin watcher uses this.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Block until the server has shut down (after a drain) and
    /// report how the drain went.
    pub fn wait(mut self) -> DrainReport {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        DrainReport {
            clean: self.shared.drained_clean.load(Ordering::Relaxed),
            stats_json: self
                .shared
                .admission
                .snapshot()
                .to_json_with_slo(Some(&self.shared.slo.render_json())),
        }
    }
}

/// Detached trigger for a graceful drain (see
/// [`QueryServer::shutdown_handle`]).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Begin the graceful drain.
    pub fn shutdown(&self) {
        let shared = Arc::clone(&self.0);
        std::thread::Builder::new()
            .name("vr-query-drain".to_string())
            .spawn(move || drain(&shared))
            .map(|_| ())
            .unwrap_or_else(|_| drain(&self.0));
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        // A dropped handle must not leak the accept thread: force the
        // flag (skipping any drain not already run) and join.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Run the graceful drain: stop admitting, flush in-flight work, then
/// release the accept loop.
fn drain(shared: &Shared) {
    shared.admission.begin_drain();
    let clean = shared.admission.await_idle(shared.cfg.drain_timeout);
    shared.drained_clean.store(clean, Ordering::Relaxed);
    shared.shutdown.store(true, Ordering::Relaxed);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("vr-query-conn".to_string())
                    .spawn(move || session(stream, conn_shared))
                {
                    sessions.push(handle);
                }
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Session threads observe the same shutdown flag via their read
    // timeouts; join them so `wait()` returning means fully stopped.
    for handle in sessions {
        let _ = handle.join();
    }
}

/// One client session: read request lines, answer each with one
/// response line, until EOF or shutdown.
fn session(stream: TcpStream, shared: Arc<Shared>) {
    // Short read timeout so the thread observes shutdown even while a
    // client sits idle with the connection open.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let request = line.trim();
                if request.is_empty() {
                    continue;
                }
                metrics::counter("server.requests").inc();
                let response = handle_request(request, &shared);
                let stop_after = request.eq_ignore_ascii_case("SHUTDOWN");
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
                if stop_after {
                    // The drain runs on its own thread; this session
                    // has answered and can close.
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn handle_request(request: &str, shared: &Arc<Shared>) -> String {
    let mut tokens = request.split_whitespace();
    let verb = tokens.next().unwrap_or("").to_ascii_uppercase();
    let kv: BTreeMap<&str, &str> =
        tokens.filter_map(|t| t.split_once('=')).collect();
    match verb.as_str() {
        "EXEC" => handle_exec(&kv, shared),
        "STATS" => {
            let json = shared
                .admission
                .snapshot()
                .to_json_with_slo(Some(&shared.slo.render_json()));
            format!("STATS {}", json.replace('\n', ""))
        }
        "HEALTH" => {
            let snap = shared.admission.snapshot();
            format!(
                "OK active={} queued={} draining={}",
                snap.active,
                snap.queued,
                snap.draining as u8
            )
        }
        "SHUTDOWN" => {
            let drain_shared = Arc::clone(shared);
            let spawned = std::thread::Builder::new()
                .name("vr-query-drain".to_string())
                .spawn(move || drain(&drain_shared))
                .is_ok();
            if !spawned {
                drain(shared);
            }
            "OK draining".to_string()
        }
        other => format!("ERR unknown request {other:?}"),
    }
}

/// Everything about how one admitted-or-shed request settled; turned
/// into an SLO sample plus a query-log record by [`settle`].
struct Settled<'a> {
    query: &'a str,
    engine: &'a str,
    outcome: Outcome,
    shed_reason: Option<&'static str>,
    degraded: bool,
    route: Option<&'static str>,
    queue_wait: Duration,
    latency: Duration,
    deadline: Option<Duration>,
    plan_digest: String,
    exemplar: Option<String>,
}

/// Record a settled request into the SLO tracker and the query log.
/// Called for every request that reached admission — admitted or shed
/// — and before its response line is written, so the log's per-tenant
/// totals reconcile exactly with the admission ledger at any `STATS`
/// the client observes after its own requests.
fn settle(shared: &Shared, req: &RequestCtx, s: Settled<'_>) {
    shared.slo.record(&req.tenant, req.priority, s.outcome, s.latency);
    shared.qlog.append(&RequestRecord {
        req: req.id,
        tenant: req.tenant.clone(),
        priority: req.priority,
        query: s.query.to_string(),
        engine: s.engine.to_string(),
        outcome: s.outcome,
        shed_reason: s.shed_reason,
        degraded: s.degraded,
        route: s.route,
        queue_wait: s.queue_wait,
        latency: s.latency,
        deadline: s.deadline,
        plan_digest: s.plan_digest,
        exemplar: s.exemplar,
    });
}

fn handle_exec(kv: &BTreeMap<&str, &str>, shared: &Arc<Shared>) -> String {
    let tenant = match kv.get("tenant") {
        Some(t) if !t.is_empty() => *t,
        _ => return "ERR EXEC needs tenant=<id>".to_string(),
    };
    let priority = match kv.get("priority").unwrap_or(&"low").parse::<Priority>() {
        Ok(p) => p,
        Err(e) => return format!("ERR {e}"),
    };
    let Some(query) = kv.get("query") else {
        return "ERR EXEC needs query=<Q1|Q2a|...>".to_string();
    };
    // Mint the request's identity at arrival: protocol-level failures
    // above never reach admission and get no id, so qlog totals stay
    // exactly admitted + shed per tenant.
    let req = RequestCtx {
        id: shared.next_request.fetch_add(1, Ordering::Relaxed) + 1,
        tenant: tenant.to_string(),
        priority,
    };
    // The per-request chrome-trace lane: admission, planning, and any
    // same-thread execution nest under it, named by id and tenant.
    let _lane = trace::span_dyn("server", || format!("request.{}.{tenant}", req.label()));
    // The semantic query class (S1/S2/S3) bypasses the engine pools:
    // it is answered from the side index or by metadata rescan, with
    // the route chosen by the cost-based optimizer.
    if let Some(sq) = SemanticQuery::parse_label(query) {
        return handle_semantic(kv, shared, &req, query, &sq);
    }
    let Some((kind, pool)) = lookup_pool(shared, query) else {
        return format!("ERR no pool for query {query:?} (server pools: {:?})",
            shared.pools.keys().map(|k| k.label()).collect::<Vec<_>>());
    };
    let engine_name = kv.get("engine").copied().unwrap_or(&shared.default_engine);
    let Some(engine) = shared.engines.get(engine_name) else {
        return format!(
            "ERR unknown engine {engine_name:?} (loaded: {:?})",
            shared.engines.keys().collect::<Vec<_>>()
        );
    };
    if !engine.supports(kind) {
        return format!("ERR engine {engine_name} does not support {}", kind.label());
    }
    let deadline_ms = match kv.get("deadline_ms").map(|v| v.parse::<u64>()) {
        Some(Ok(ms)) => Some(Duration::from_millis(ms)),
        Some(Err(_)) => return "ERR deadline_ms wants an integer".to_string(),
        None => shared.cfg.default_deadline,
    };
    let online_speedup = match kv.get("online").map(|v| v.parse::<f64>()) {
        Some(Ok(s)) if s > 0.0 => Some(s),
        Some(_) => return "ERR online wants a positive speedup factor".to_string(),
        None => None,
    };

    let t0 = Instant::now();
    let deadline = deadline_ms.map(|d| t0 + d);
    let permit = match shared.admission.admit_request(&req, deadline) {
        Ok(p) => p,
        Err(reason) => {
            settle(shared, &req, Settled {
                query,
                engine: engine_name,
                outcome: Outcome::Shed,
                shed_reason: Some(reason.label()),
                degraded: false,
                route: None,
                queue_wait: Duration::ZERO,
                latency: t0.elapsed(),
                deadline: deadline_ms,
                plan_digest: String::new(),
                exemplar: None,
            });
            return format!("SHED reason={}", reason.label());
        }
    };

    // Round-robin over the pregenerated pool: concurrent sessions
    // spread across distinct instances like a batch does.
    let instance = &pool.instances[pool.next.fetch_add(1, Ordering::Relaxed) % pool.instances.len()];
    let label = kind.label().replace(['(', ')'], "");
    let ctx = ExecContext {
        workers: if permit.degraded() {
            shared.cfg.degraded_workers.max(1)
        } else {
            shared.cfg.workers.max(1)
        },
        query_label: label.clone(),
        cancel: match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        },
        metrics: Arc::new(PipelineMetrics::default()),
        tenant: Some(Arc::from(tenant)),
        request_id: Some(Arc::from(format!("{}.{tenant}", req.label()).as_str())),
        ..ExecContext::default()
    };
    // The digest identifies the plan the request ran with — cheap (no
    // execution) and deterministic for (instance, context).
    let plan_digest = qlog::fnv64_hex(&engine.plan(instance, &ctx).render_text());

    // The online half of a mixed workload: pace the instance's inputs
    // through RTP ingest first, inside the measured latency (a live
    // camera's frames are not free).
    if let Some(speedup) = online_speedup {
        if let Err(e) = ingest_instance_online(shared, instance, speedup) {
            let queue_wait = permit.queue_wait();
            permit.fail();
            metrics::counter("server.exec_err").inc();
            settle(shared, &req, Settled {
                query,
                engine: engine_name,
                outcome: Outcome::Err,
                shed_reason: None,
                degraded: false,
                route: None,
                queue_wait,
                latency: t0.elapsed(),
                deadline: deadline_ms,
                plan_digest,
                exemplar: None,
            });
            return format!("ERR ingest: {e}");
        }
    }

    let result = engine.execute(instance, &shared.dataset.videos, &ctx);
    let latency = t0.elapsed();
    metrics::histogram(&format!("server.latency.{priority}")).observe(latency.as_nanos() as u64);
    let degraded = permit.degraded();
    let queue_wait = permit.queue_wait();
    match result {
        Ok(_) => {
            permit.succeed();
            // Pixel queries always scan/decode their inputs — in the
            // index-vs-rescan ledger they are rescan-served, keeping
            // ok == index_served + rescan_served exact per tenant.
            shared.admission.note_route(tenant, false);
            metrics::counter("server.exec_ok").inc();
            // A completion at or above the slow-query threshold gets
            // the full EXPLAIN ANALYZE exemplar: the same plan shape,
            // annotated with this run's measured stage costs.
            let exemplar = shared
                .qlog
                .slow_threshold()
                .filter(|&thr| latency >= thr)
                .map(|_| {
                    let mut plan = engine.plan(instance, &ctx);
                    plan.annotate(&ctx.metrics.snapshot(), latency.as_nanos() as u64);
                    plan.render_text()
                });
            settle(shared, &req, Settled {
                query,
                engine: engine_name,
                outcome: Outcome::Ok,
                shed_reason: None,
                degraded,
                route: Some("rescan"),
                queue_wait,
                latency,
                deadline: deadline_ms,
                plan_digest,
                exemplar,
            });
            format!(
                "OK tenant={tenant} query={label} engine={engine_name} latency_us={} degraded={} route=rescan",
                latency.as_micros(),
                degraded as u8
            )
        }
        Err(Error::Cancelled(_)) => {
            // A deadline cancellation is the client's latency bound
            // doing its job, not an engine fault: it must not feed the
            // tenant's breaker.
            permit.succeed();
            metrics::counter("server.exec_cancelled").inc();
            settle(shared, &req, Settled {
                query,
                engine: engine_name,
                outcome: Outcome::Cancelled,
                shed_reason: None,
                degraded,
                route: None,
                queue_wait,
                latency,
                deadline: deadline_ms,
                plan_digest,
                exemplar: None,
            });
            format!(
                "CANCELLED tenant={tenant} query={label} latency_us={}",
                latency.as_micros()
            )
        }
        Err(e) => {
            permit.fail();
            metrics::counter("server.exec_err").inc();
            settle(shared, &req, Settled {
                query,
                engine: engine_name,
                outcome: Outcome::Err,
                shed_reason: None,
                degraded,
                route: None,
                queue_wait,
                latency,
                deadline: deadline_ms,
                plan_digest,
                exemplar: None,
            });
            format!("ERR tenant={tenant} query={label}: {e}")
        }
    }
}

/// Serve one semantic query (S1/S2/S3) under full admission control.
/// The route is the optimizer's cached index-vs-rescan decision; with
/// no usable index loaded the IndexScan policy is not a candidate and
/// every request runs (and is accounted) as rescan.
fn handle_semantic(
    kv: &BTreeMap<&str, &str>,
    shared: &Arc<Shared>,
    req: &RequestCtx,
    label: &str,
    sq: &SemanticQuery,
) -> String {
    let tenant = req.tenant.as_str();
    let priority = req.priority;
    let deadline_ms = match kv.get("deadline_ms").map(|v| v.parse::<u64>()) {
        Some(Ok(ms)) => Some(Duration::from_millis(ms)),
        Some(Err(_)) => return "ERR deadline_ms wants an integer".to_string(),
        None => shared.cfg.default_deadline,
    };
    let t0 = Instant::now();
    let deadline = deadline_ms.map(|d| t0 + d);
    let permit = match shared.admission.admit_request(req, deadline) {
        Ok(p) => p,
        Err(reason) => {
            settle(shared, req, Settled {
                query: label,
                engine: "semantic",
                outcome: Outcome::Shed,
                shed_reason: Some(reason.label()),
                degraded: false,
                route: None,
                queue_wait: Duration::ZERO,
                latency: t0.elapsed(),
                deadline: deadline_ms,
                plan_digest: String::new(),
                exemplar: None,
            });
            return format!("SHED reason={}", reason.label());
        }
    };
    let decision_key = format!("semantic/{label}");
    let use_index = decide_route(
        &shared.optimizer,
        &decision_key,
        &shared.dataset,
        shared.index.as_ref().map(|i| i.len() as u64),
    );
    // For semantic queries the "plan" is the optimizer's cached
    // index-vs-rescan decision; its rendering backs both the digest
    // and any slow-query exemplar.
    let decision_text = shared
        .optimizer
        .decision(&decision_key)
        .map(|d| d.render_text())
        .unwrap_or_else(|| format!("{decision_key}: route=rescan (no decision recorded)\n"));
    let plan_digest = qlog::fnv64_hex(&decision_text);
    let result = match (&shared.index, use_index) {
        (Some(index), true) => answer_with_index(index, sq),
        _ => answer_with_rescan(&shared.dataset, sq),
    };
    let latency = t0.elapsed();
    metrics::histogram(&format!("server.latency.{priority}")).observe(latency.as_nanos() as u64);
    let degraded = permit.degraded();
    let queue_wait = permit.queue_wait();
    match result {
        Ok(answer) => {
            permit.succeed();
            let index_served = use_index && shared.index.is_some();
            shared.admission.note_route(tenant, index_served);
            metrics::counter("server.exec_ok").inc();
            let route = if index_served { "index" } else { "rescan" };
            let exemplar = shared
                .qlog
                .slow_threshold()
                .filter(|&thr| latency >= thr)
                .map(|_| decision_text.clone());
            settle(shared, req, Settled {
                query: label,
                engine: "semantic",
                outcome: Outcome::Ok,
                shed_reason: None,
                degraded,
                route: Some(route),
                queue_wait,
                latency,
                deadline: deadline_ms,
                plan_digest,
                exemplar,
            });
            format!(
                "OK tenant={tenant} query={label} engine=semantic latency_us={} degraded={} route={route} {}",
                latency.as_micros(),
                degraded as u8,
                answer.render()
            )
        }
        Err(e) => {
            permit.fail();
            metrics::counter("server.exec_err").inc();
            settle(shared, req, Settled {
                query: label,
                engine: "semantic",
                outcome: Outcome::Err,
                shed_reason: None,
                degraded,
                route: None,
                queue_wait,
                latency,
                deadline: deadline_ms,
                plan_digest,
                exemplar: None,
            });
            format!("ERR tenant={tenant} query={label}: {e}")
        }
    }
}

fn ingest_instance_online(
    shared: &Shared,
    instance: &QueryInstance,
    speedup: f64,
) -> vr_base::Result<usize> {
    let mut packets = 0;
    for &i in &instance.inputs {
        packets += ingest_online(&shared.dataset.videos[i], speedup)?;
    }
    Ok(packets)
}

/// Resolve a query label (`Q1`, `q2a`, `Q2(a)`, ...) to a pooled kind.
fn lookup_pool<'s>(shared: &'s Shared, query: &str) -> Option<(QueryKind, &'s Pool)> {
    let want = query.trim().replace(['(', ')'], "").to_ascii_uppercase();
    shared
        .pools
        .iter()
        .find(|(kind, _)| kind.label().replace(['(', ')'], "").to_ascii_uppercase() == want)
        .map(|(&kind, pool)| (kind, pool))
}

/// Shed reasons whose counts the stress driver treats as load shedding
/// (as opposed to per-tenant isolation effects like quota/breaker).
pub fn load_shed_reasons() -> [ShedReason; 2] {
    [ShedReason::Saturated, ShedReason::QueueFull]
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg::{GenConfig, Vcg};
    use vr_base::Hyperparameters;
    use vr_base::{Duration as VrDuration, Resolution};
    use vr_vdbms::BatchEngine;

    fn tiny_dataset() -> Dataset {
        let hyper =
            Hyperparameters::new(1, Resolution::new(96, 54), VrDuration::from_secs(0.25), 11)
                .unwrap();
        Vcg::new(GenConfig::default()).generate(&hyper).unwrap()
    }

    fn start_server(cfg: ServerConfig) -> QueryServer {
        QueryServer::start(tiny_dataset(), vec![Box::new(BatchEngine::new())], cfg).unwrap()
    }

    fn request(stream: &mut TcpStream, line: &str) -> String {
        use std::io::{BufRead, BufReader, Write};
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim().to_string()
    }

    #[test]
    fn exec_health_stats_and_graceful_shutdown() {
        let server = start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select],
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut conn = TcpStream::connect(addr).unwrap();

        let ok = request(&mut conn, "EXEC tenant=alpha priority=high query=Q1");
        assert!(ok.starts_with("OK tenant=alpha query=Q1"), "exec response: {ok}");
        assert!(ok.contains("latency_us="));

        let health = request(&mut conn, "HEALTH");
        assert!(health.starts_with("OK active=0"), "health response: {health}");

        let stats = request(&mut conn, "STATS");
        assert!(stats.starts_with("STATS {"), "stats response: {stats}");
        assert!(stats.contains("\"alpha\""));
        assert!(!stats.contains('\n'));

        let bad = request(&mut conn, "EXEC tenant=alpha priority=high query=Q9");
        assert!(bad.starts_with("ERR no pool"), "missing pool: {bad}");

        let down = request(&mut conn, "SHUTDOWN");
        assert_eq!(down, "OK draining");
        let report = server.wait();
        assert!(report.clean, "drain must be clean with nothing in flight");
        assert!(report.stats_json.contains("\"draining\": true"));
    }

    #[test]
    fn semantic_queries_report_their_route_and_split_the_ledger() {
        let server = start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select],
            use_index: true,
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.addr()).unwrap();

        // With an index loaded the optimizer routes S-queries to it.
        let s2 = request(&mut conn, "EXEC tenant=alpha priority=high query=S2");
        assert!(s2.starts_with("OK tenant=alpha query=S2 engine=semantic"), "s2: {s2}");
        assert!(s2.contains("route=index"), "s2 must be index-served: {s2}");
        assert!(s2.contains("segments=["), "s2 carries its answer: {s2}");
        let s1 = request(&mut conn, "EXEC tenant=alpha priority=high query=S1");
        assert!(s1.contains("route=index") && s1.contains("count="), "s1: {s1}");

        // Pixel queries scan their inputs: rescan-served by definition.
        let q1 = request(&mut conn, "EXEC tenant=alpha priority=high query=Q1");
        assert!(q1.starts_with("OK ") && q1.contains("route=rescan"), "q1: {q1}");

        let stats = request(&mut conn, "STATS");
        assert!(stats.contains("\"index_served\": 2"), "ledger: {stats}");
        assert!(stats.contains("\"rescan_served\": 1"), "ledger: {stats}");

        request(&mut conn, "SHUTDOWN");
        assert!(server.wait().clean);
    }

    #[test]
    fn semantic_queries_fall_back_to_rescan_without_an_index() {
        let server = start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select],
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let s1 = request(&mut conn, "EXEC tenant=beta priority=low query=S1");
        assert!(s1.starts_with("OK tenant=beta query=S1"), "s1: {s1}");
        assert!(s1.contains("route=rescan"), "no index => rescan: {s1}");
        request(&mut conn, "SHUTDOWN");
        assert!(server.wait().clean);
    }

    #[test]
    fn tiny_deadline_is_cancelled_not_errored() {
        let server = start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select],
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        // A 0 ms deadline cancels at the first frame boundary: the
        // response must be CANCELLED (bounded latency), never ERR,
        // and must not trip the tenant's breaker.
        for _ in 0..4 {
            let r = request(&mut conn, "EXEC tenant=rush priority=high query=Q1 deadline_ms=0");
            assert!(r.starts_with("CANCELLED tenant=rush"), "deadline response: {r}");
        }
        let ok = request(&mut conn, "EXEC tenant=rush priority=high query=Q1");
        assert!(ok.starts_with("OK "), "breaker must not trip on cancellations: {ok}");
        server.shutdown();
        assert!(server.wait().clean);
    }

    #[test]
    fn concurrent_sessions_share_the_engines() {
        let server = Arc::new(start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select, QueryKind::Q2aGrayscale],
            ..ServerConfig::default()
        }));
        let addr = server.addr();
        let threads: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    let query = if i % 2 == 0 { "Q1" } else { "Q2a" };
                    let tenant = format!("t{}", i % 3);
                    let mut ok = 0;
                    for _ in 0..3 {
                        let r = request(
                            &mut conn,
                            &format!("EXEC tenant={tenant} priority=low query={query}"),
                        );
                        assert!(
                            r.starts_with("OK ") || r.starts_with("SHED "),
                            "unexpected response under load: {r}"
                        );
                        if r.starts_with("OK ") {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(total > 0, "at least some concurrent requests must complete");
        let server = Arc::try_unwrap(server).ok().expect("sole owner");
        server.shutdown();
        assert!(server.wait().clean);
    }

    /// Zero a qlog line's two timing fields; everything else in a
    /// record is deterministic for a deterministic request sequence.
    fn strip_timings(line: &str) -> String {
        line.split(", ")
            .map(|field| {
                if field.starts_with("\"queue_wait_us\":") {
                    "\"queue_wait_us\": 0".to_string()
                } else if field.starts_with("\"latency_us\":") {
                    "\"latency_us\": 0".to_string()
                } else {
                    field.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    #[test]
    fn qlog_is_deterministic_across_identical_runs() {
        fn run(path: &std::path::Path) -> Vec<String> {
            let server = start_server(ServerConfig {
                queries: vec![QueryKind::Q1Select],
                use_index: true,
                qlog_path: Some(path.to_str().unwrap().to_string()),
                ..ServerConfig::default()
            });
            let mut conn = TcpStream::connect(server.addr()).unwrap();
            for q in ["Q1", "S1", "Q1"] {
                let r =
                    request(&mut conn, &format!("EXEC tenant=alpha priority=high query={q}"));
                assert!(r.starts_with("OK "), "exec response: {r}");
            }
            request(&mut conn, "SHUTDOWN");
            assert!(server.wait().clean);
            let body = std::fs::read_to_string(path).unwrap();
            std::fs::remove_file(path).ok();
            body.lines().map(strip_timings).collect()
        }
        let tmp = std::env::temp_dir();
        let a = run(&tmp.join(format!("vr_qlog_det_{}_a.jsonl", std::process::id())));
        let b = run(&tmp.join(format!("vr_qlog_det_{}_b.jsonl", std::process::id())));
        assert_eq!(a.len(), 3, "one record per request: {a:?}");
        assert_eq!(a, b, "identical seeded runs must log identically modulo timings");
        // Sequential requests over one connection settle in arrival
        // order, so seq tracks req exactly.
        assert!(
            a[0].starts_with(
                "{\"seq\": 1, \"req\": 1, \"tenant\": \"alpha\", \"priority\": \"high\", \
                 \"query\": \"Q1\", \"engine\": \"batch\", \"outcome\": \"ok\""
            ),
            "first record: {}",
            a[0]
        );
        assert!(!a[0].contains("\"plan_digest\": \"\""), "completed requests carry a digest");
        assert!(
            a[1].contains("\"engine\": \"semantic\"") && a[1].contains("\"route\": \"index\""),
            "semantic record: {}",
            a[1]
        );
    }

    #[test]
    fn slow_query_exemplar_captures_the_annotated_plan() {
        use vr_base::fault::{self, FaultInjector};
        let path =
            std::env::temp_dir().join(format!("vr_qlog_slow_{}.jsonl", std::process::id()));
        // A 5ms injected kernel stall guarantees the request lands over
        // the 1ms slow-query threshold.
        fault::install(Some(Arc::new(
            FaultInjector::from_spec("stall_stage=kernel:5ms", 7).unwrap(),
        )));
        let server = start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select],
            qlog_path: Some(path.to_str().unwrap().to_string()),
            slow_query: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let r = request(&mut conn, "EXEC tenant=alpha priority=high query=Q1");
        assert!(r.starts_with("OK "), "stalled exec still completes: {r}");
        request(&mut conn, "SHUTDOWN");
        assert!(server.wait().clean);
        fault::install(None);
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 1, "one record: {body}");
        assert!(lines[0].contains("\"slow_us\": 1000,"), "threshold echoed: {}", lines[0]);
        // The exemplar is the full EXPLAIN ANALYZE text: the plan shape
        // annotated with this run's measured per-stage wall times.
        assert!(lines[0].contains("\"exemplar\": \""), "exemplar captured: {}", lines[0]);
        assert!(lines[0].contains("wall="), "exemplar is annotated: {}", lines[0]);
    }

    #[test]
    fn stats_carries_the_slo_block_and_the_endpoint_serves_views() {
        let server = start_server(ServerConfig {
            queries: vec![QueryKind::Q1Select],
            // A generous objective keeps the one OK below it even on a
            // loaded runner: its burn rate must be exactly zero.
            slo: SloConfig { high: Duration::from_secs(60), ..SloConfig::default() },
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let ok = request(&mut conn, "EXEC tenant=alpha priority=high query=Q1");
        assert!(ok.starts_with("OK "), "exec response: {ok}");
        let stats = request(&mut conn, "STATS");
        assert!(stats.contains("\"slo\": {"), "stats slo block: {stats}");
        assert!(stats.contains("\"alpha/high\""), "slo class: {stats}");
        assert!(stats.contains("\"burn_rate\": 0.000"), "fast ok burns nothing: {stats}");

        // The loopback endpoint serves the registered /slo and
        // /requests views. The view registry is process-global (last
        // registration wins), so parallel server tests may have
        // re-registered: assert schema, not this server's counts.
        fn http_get(addr: SocketAddr, path: &str) -> String {
            use std::io::Read;
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        }
        let ms = serve::MetricsServer::start(0).unwrap();
        let slo = http_get(ms.addr(), "/slo");
        assert!(slo.starts_with("HTTP/1.1 200 OK"), "/slo response: {slo}");
        assert!(slo.contains("application/json"), "/slo content type: {slo}");
        assert!(
            slo.contains("\"objective_ms\"")
                && slo.contains("\"target\"")
                && slo.contains("\"window\""),
            "/slo schema: {slo}"
        );
        let reqs = http_get(ms.addr(), "/requests");
        assert!(reqs.starts_with("HTTP/1.1 200 OK"), "/requests response: {reqs}");
        assert!(reqs.contains("application/jsonl"), "/requests content type: {reqs}");
        ms.stop();

        request(&mut conn, "SHUTDOWN");
        assert!(server.wait().clean);
    }
}
