//! The semantic-index ingest pass and its query surface.
//!
//! `visualroad ingest` runs detection/tracking ONCE over a dataset's
//! metadata box tracks (no pixel decode), associates detections into
//! tracklets, embeds each tracklet into a compact scalar-quantized
//! feature vector, and persists everything as a `.vrsx` container side
//! index ([`vr_index`]). Aggregation, top-k, and similarity queries
//! then run from the in-memory index in microseconds.
//!
//! Two execution routes exist for every semantic query and both are
//! first-class:
//!
//! * **index** — probe the loaded [`SemanticIndex`]; never touches the
//!   dataset again.
//! * **rescan** — redo the full scan/associate pass per query and
//!   answer from the fresh records. This is the fallback when no index
//!   exists or a side-index file fails validation (stale or corrupt
//!   indexes fail *closed* into rescan, never into wrong answers).
//!
//! Which route runs is a cost-based decision ([`decide_route`]): the
//! optimizer compares an `IndexScan` candidate (`vectors ×
//! index_probe_ns_per_vector`) against a metadata `Streaming` rescan
//! (`frames × scan+sink`), and the choice is visible in EXPLAIN output.
//!
//! Answers are validated against VCG scene geometry
//! ([`truth_top_segments`] / [`recall_at_k`]), not against the scan
//! itself — the index must agree with the *world*, not merely with the
//! code that built it.

use std::collections::{BTreeMap, BTreeSet};

use vr_base::{Error, Result};
use vr_geom::Rect;
use vr_index::quant::Quantized;
use vr_index::record::presence_bitset;
use vr_index::{
    count_records, similar_records, top_segments_of, SegmentHit, SemanticIndex, TrackRecord,
    EMBED_DIM,
};
use vr_scene::entity::ObjectClass;
use vr_scene::groundtruth::frame_truth;
use vr_vdbms::kernels::box_track;
use vr_vdbms::{CandidateSpace, KernelClass, Optimizer, Policy, QueryWork};
use vr_vision::{associate, embed_tracklet, TrackerConfig, TRACK_EMBED_DIM};

use crate::dataset::Dataset;

// The tracker's embedding and the index's record format must agree on
// dimensionality; a drift here is a compile error, not a runtime one.
const _: () = assert!(TRACK_EMBED_DIM == EMBED_DIM);

/// Summary of one ingest pass, for CLI output and artifacts.
#[derive(Debug, Clone, Copy)]
pub struct IngestStats {
    /// Traffic videos scanned.
    pub videos: usize,
    /// Total frames scanned across those videos.
    pub frames: u64,
    /// Tracklet records persisted.
    pub tracklets: usize,
    /// Side-index file size in bytes.
    pub bytes: usize,
}

impl IngestStats {
    pub fn of(index: &SemanticIndex, bytes: usize) -> IngestStats {
        IngestStats {
            videos: index.video_frames().len(),
            frames: index.video_frames().values().map(|&f| f as u64).sum(),
            tracklets: index.len(),
            bytes,
        }
    }
}

/// One detection/tracking pass over the dataset's metadata box tracks:
/// per traffic video, read the per-frame boxes, associate them into
/// tracklets, and emit one [`TrackRecord`] per tracklet with a
/// quantized embedding. Shared by ingest (which persists the result)
/// and the rescan route (which recomputes it per query).
fn scan_records(dataset: &Dataset) -> Result<(BTreeMap<u32, u32>, Vec<TrackRecord>)> {
    let res = dataset.hyper.resolution;
    let mut video_frames = BTreeMap::new();
    let mut records: Vec<TrackRecord> = Vec::new();
    for vi in dataset.traffic_indices() {
        let input = &dataset.videos[vi];
        let frames = input.frame_count() as u32;
        video_frames.insert(vi as u32, frames);
        let mut dets: Vec<Vec<(ObjectClass, Rect)>> = Vec::with_capacity(frames as usize);
        for f in 0..frames as usize {
            let boxes = box_track(input, f)?;
            dets.push(boxes.into_iter().map(|b| (b.class, b.rect)).collect());
        }
        for t in associate(&dets, TrackerConfig::default()) {
            let observed: Vec<u32> = t.frames().collect();
            let embedding = embed_tracklet(&t, res.width, res.height, frames);
            records.push(TrackRecord {
                id: records.len() as u32,
                video: vi as u32,
                class: t.class,
                first_frame: t.first_frame(),
                last_frame: t.last_frame(),
                presence: presence_bitset(t.first_frame(), t.last_frame(), &observed),
                quant: Quantized::quantize(&embedding)?,
            });
        }
    }
    Ok((video_frames, records))
}

/// Run the ingest pass and return the loaded index together with its
/// serialized side-index bytes. The bytes round-trip through
/// [`SemanticIndex::from_sidecar_bytes`] before being returned, so
/// every ingest also proves its own file parses and validates.
pub fn ingest_dataset(dataset: &Dataset) -> Result<(SemanticIndex, Vec<u8>)> {
    let (video_frames, records) = scan_records(dataset)?;
    let bytes = SemanticIndex::to_sidecar_bytes(dataset.hyper.seed, &video_frames, &records);
    let index = SemanticIndex::from_sidecar_bytes(&bytes)?;
    Ok((index, bytes))
}

/// Validate a loaded index against the dataset it claims to describe.
/// A *stale* index — built from a different seed, or from a dataset
/// whose video set or frame counts have since changed — parses fine
/// but would answer about a world that no longer exists, so it is
/// rejected here and the caller falls back to rescan. This is the
/// fail-closed half of the side-index threat model: corrupt files die
/// in `from_sidecar_bytes`, stale files die here, and neither ever
/// produces a wrong answer.
pub fn validate_index(index: &SemanticIndex, dataset: &Dataset) -> Result<()> {
    if index.seed() != dataset.hyper.seed {
        return Err(Error::ValidationFailed(format!(
            "index built from seed {} but dataset has seed {}",
            index.seed(),
            dataset.hyper.seed
        )));
    }
    let expect: BTreeMap<u32, u32> = dataset
        .traffic_indices()
        .into_iter()
        .map(|vi| (vi as u32, dataset.videos[vi].frame_count() as u32))
        .collect();
    if index.video_frames() != &expect {
        return Err(Error::ValidationFailed(format!(
            "index covers videos {:?} but dataset has {:?}",
            index.video_frames(),
            expect
        )));
    }
    Ok(())
}

/// The semantic query class served by the index (or its rescan twin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticQuery {
    /// Distinct tracklets, optionally filtered by class and/or video.
    Count { class: Option<ObjectClass>, video: Option<u32> },
    /// Top-k fixed windows of `window` frames by distinct-tracklet count.
    TopK { class: Option<ObjectClass>, window: u32, k: usize },
    /// k nearest tracklets to `track` by embedding distance.
    Similar { track: u32, k: usize },
}

impl SemanticQuery {
    /// The benchmark's named semantic query instances, analogous to
    /// Q1..Q10 for the pixel suite. `S1` counts everything, `S2` ranks
    /// vehicle-busy windows, `S3` finds tracklets similar to track 0.
    pub fn parse_label(label: &str) -> Option<SemanticQuery> {
        match label {
            "S1" => Some(SemanticQuery::Count { class: None, video: None }),
            "S2" => Some(SemanticQuery::TopK {
                class: Some(ObjectClass::Vehicle),
                window: 8,
                k: 10,
            }),
            "S3" => Some(SemanticQuery::Similar { track: 0, k: 10 }),
            _ => None,
        }
    }

    /// Query-kind name used in artifacts and EXPLAIN keys.
    pub fn kind(&self) -> &'static str {
        match self {
            SemanticQuery::Count { .. } => "count",
            SemanticQuery::TopK { .. } => "topk",
            SemanticQuery::Similar { .. } => "similar",
        }
    }
}

/// A semantic query's answer, identical in shape on both routes.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticAnswer {
    Count(u64),
    Segments(Vec<SegmentHit>),
    Similar(Vec<(u32, f32)>),
}

impl SemanticAnswer {
    /// One-line rendering for CLI output and server responses.
    pub fn render(&self) -> String {
        match self {
            SemanticAnswer::Count(n) => format!("count={n}"),
            SemanticAnswer::Segments(hits) => {
                let parts: Vec<String> = hits
                    .iter()
                    .map(|h| format!("{}:{}={}", h.video, h.segment, h.count))
                    .collect();
                format!("segments=[{}]", parts.join(","))
            }
            SemanticAnswer::Similar(hits) => {
                let parts: Vec<String> =
                    hits.iter().map(|&(id, d)| format!("{id}@{d:.4}")).collect();
                format!("similar=[{}]", parts.join(","))
            }
        }
    }
}

/// Answer from a loaded index — no dataset access at all.
pub fn answer_with_index(index: &SemanticIndex, q: &SemanticQuery) -> Result<SemanticAnswer> {
    match *q {
        SemanticQuery::Count { class, video } => {
            Ok(SemanticAnswer::Count(index.count_distinct(class, video)))
        }
        SemanticQuery::TopK { class, window, k } => {
            Ok(SemanticAnswer::Segments(index.top_segments(class, window, k)))
        }
        SemanticQuery::Similar { track, k } => {
            Ok(SemanticAnswer::Similar(index.similar(track, k)?))
        }
    }
}

/// Answer by redoing the full scan/associate pass — the no-index
/// fallback. Count and top-k agree with the index route exactly (both
/// delegate to the same record-set functions); similarity is exact
/// brute force where the index is approximate graph search.
pub fn answer_with_rescan(dataset: &Dataset, q: &SemanticQuery) -> Result<SemanticAnswer> {
    let (video_frames, records) = scan_records(dataset)?;
    match *q {
        SemanticQuery::Count { class, video } => {
            Ok(SemanticAnswer::Count(count_records(&records, class, video)))
        }
        SemanticQuery::TopK { class, window, k } => Ok(SemanticAnswer::Segments(
            top_segments_of(&video_frames, &records, class, window, k),
        )),
        SemanticQuery::Similar { track, k } => {
            Ok(SemanticAnswer::Similar(similar_records(&records, track, k)?))
        }
    }
}

/// Cost-based index-vs-rescan decision for one semantic query.
///
/// The rescan candidate is a metadata `Streaming` pass — `frames ×
/// (scan + sink)`, zero pixels since no decode happens — and the
/// `IndexScan` candidate costs `vectors × index_probe_ns_per_vector`.
/// When `indexed_vectors` is `None` (no usable index) the IndexScan
/// policy is not even a candidate, so the decision degrades to rescan
/// rather than estimating an impossible plan. The decision is recorded
/// under `key` so `opt.decision(key)` renders it in EXPLAIN output.
pub fn decide_route(
    opt: &Optimizer,
    key: &str,
    dataset: &Dataset,
    indexed_vectors: Option<u64>,
) -> bool {
    let frames: u64 = dataset
        .traffic_indices()
        .iter()
        .map(|&vi| dataset.videos[vi].frame_count() as u64)
        .sum();
    let work = QueryWork {
        frames,
        in_pixels: 0,
        out_pixels: 0,
        kernel: KernelClass::PerPixel { factor: 0.0 },
        vectors: indexed_vectors.unwrap_or(0),
    };
    let mut policies = vec![Policy::Streaming];
    if indexed_vectors.is_some() {
        policies.insert(0, Policy::IndexScan);
    }
    let choice = opt.decide(key, work, &CandidateSpace { policies, max_fanout: 1 });
    choice.policy == Policy::IndexScan
}

/// VCG-exact top segments: distinct ground-truth entities visible
/// (non-occluded) at least once in each fixed window, ranked with the
/// same ordering as the index's `top_segments`. Returns ALL segments,
/// best first — callers truncate. This is the reference the index-gate
/// recall check compares against.
pub fn truth_top_segments(
    dataset: &Dataset,
    class: Option<ObjectClass>,
    window: u32,
) -> Result<Vec<SegmentHit>> {
    let window = window.max(1);
    let res = dataset.hyper.resolution;
    let mut hits: Vec<SegmentHit> = Vec::new();
    for vi in dataset.traffic_indices() {
        let input = &dataset.videos[vi];
        let meta = &dataset.meta[vi];
        let cam_id = meta
            .camera
            .ok_or_else(|| Error::InvalidConfig(format!("traffic video {vi} has no camera")))?;
        let cam = dataset
            .city
            .cameras()
            .iter()
            .find(|c| c.id == cam_id)
            .ok_or_else(|| Error::NotFound(format!("camera for video {vi}")))?;
        let frames = input.frame_count() as u32;
        let interval = input.video_info()?.frame_rate.frame_interval_secs();
        let mut sets: BTreeMap<u32, BTreeSet<u32>> =
            (0..frames.div_ceil(window)).map(|s| (s, BTreeSet::new())).collect();
        for f in 0..frames {
            let truth =
                frame_truth(&dataset.city, cam, f as f64 * interval, res.width, res.height);
            let seg = sets.get_mut(&(f / window)).expect("segment covers every frame");
            for o in truth.objects.iter().filter(|o| !o.occluded) {
                if class.is_none_or(|c| o.class == c) {
                    seg.insert(o.entity_id);
                }
            }
        }
        for (segment, set) in sets {
            hits.push(SegmentHit { video: vi as u32, segment, count: set.len() as u32 });
        }
    }
    hits.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.video.cmp(&b.video))
            .then(a.segment.cmp(&b.segment))
    });
    Ok(hits)
}

/// Ties-generous recall@k: a returned segment counts as relevant when
/// its true count is ≥ the k-th best true count, so equal-count ties
/// broken differently by the two sides can never fail the check.
/// `truth` must be the FULL ranked truth list (untruncated); `got` is
/// the answer under test.
pub fn recall_at_k(truth: &[SegmentHit], got: &[SegmentHit], k: usize) -> f64 {
    if truth.is_empty() || k == 0 {
        return 1.0;
    }
    let k = k.min(truth.len());
    let threshold = truth[k - 1].count;
    let relevant: BTreeSet<(u32, u32)> = truth
        .iter()
        .filter(|h| h.count >= threshold)
        .map(|h| (h.video, h.segment))
        .collect();
    let hit = got.iter().take(k).filter(|h| relevant.contains(&(h.video, h.segment))).count();
    hit as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg::{GenConfig, Vcg};
    use vr_base::{Duration, Hyperparameters, Resolution};
    use vr_vdbms::CalibrationProfile;

    fn tiny_dataset() -> Dataset {
        let hyper = Hyperparameters::new(
            1,
            Resolution::new(96, 54),
            Duration::from_secs(0.3),
            9,
        )
        .unwrap();
        Vcg::new(GenConfig::default()).generate(&hyper).unwrap()
    }

    #[test]
    fn ingest_is_byte_deterministic_and_parses_back() {
        let dataset = tiny_dataset();
        let (index, bytes_a) = ingest_dataset(&dataset).unwrap();
        let (_, bytes_b) = ingest_dataset(&dataset).unwrap();
        assert_eq!(bytes_a, bytes_b, "two ingests must produce identical side-index files");
        assert!(!index.is_empty(), "a traffic dataset must yield tracklets");
        assert_eq!(index.seed(), 9);
        let stats = IngestStats::of(&index, bytes_a.len());
        assert_eq!(stats.videos, dataset.traffic_indices().len());
        assert!(stats.frames > 0 && stats.tracklets > 0 && stats.bytes > 0);
    }

    #[test]
    fn index_and_rescan_routes_agree_on_count_and_topk() {
        let dataset = tiny_dataset();
        let (index, _) = ingest_dataset(&dataset).unwrap();
        for q in [
            SemanticQuery::Count { class: None, video: None },
            SemanticQuery::Count { class: Some(ObjectClass::Vehicle), video: None },
            SemanticQuery::TopK { class: Some(ObjectClass::Vehicle), window: 4, k: 5 },
            SemanticQuery::TopK { class: None, window: 3, k: 8 },
        ] {
            let via_index = answer_with_index(&index, &q).unwrap();
            let via_rescan = answer_with_rescan(&dataset, &q).unwrap();
            assert_eq!(via_index, via_rescan, "routes diverged on {q:?}");
        }
    }

    #[test]
    fn topk_recall_against_scene_geometry() {
        let dataset = tiny_dataset();
        let (index, _) = ingest_dataset(&dataset).unwrap();
        let got = index.top_segments(Some(ObjectClass::Vehicle), 4, 4);
        let truth = truth_top_segments(&dataset, Some(ObjectClass::Vehicle), 4).unwrap();
        let recall = recall_at_k(&truth, &got, 4);
        assert!(recall >= 0.75, "recall@4 vs VCG truth too low: {recall}");
    }

    #[test]
    fn recall_is_generous_about_equal_count_ties() {
        let truth = vec![
            SegmentHit { video: 0, segment: 0, count: 5 },
            SegmentHit { video: 0, segment: 1, count: 3 },
            SegmentHit { video: 1, segment: 0, count: 3 },
            SegmentHit { video: 1, segment: 1, count: 1 },
        ];
        // Picks the OTHER count-3 segment at rank 2: still perfect.
        let got = vec![
            SegmentHit { video: 0, segment: 0, count: 5 },
            SegmentHit { video: 1, segment: 0, count: 3 },
        ];
        assert_eq!(recall_at_k(&truth, &got, 2), 1.0);
        // A count-1 segment in the top 2 is a genuine miss.
        let bad = vec![
            SegmentHit { video: 0, segment: 0, count: 5 },
            SegmentHit { video: 1, segment: 1, count: 1 },
        ];
        assert_eq!(recall_at_k(&truth, &bad, 2), 0.5);
        assert_eq!(recall_at_k(&[], &got, 2), 1.0);
    }

    #[test]
    fn optimizer_routes_to_index_only_when_one_exists() {
        let dataset = tiny_dataset();
        let opt = Optimizer::new(CalibrationProfile::builtin());
        assert!(decide_route(&opt, "semantic/S2", &dataset, Some(40)));
        let decision = opt.decision("semantic/S2").expect("decision recorded");
        assert_eq!(decision.chosen.policy, Policy::IndexScan);
        assert!(decision.render_text().contains("index-scan"));
        let opt2 = Optimizer::new(CalibrationProfile::builtin());
        assert!(!decide_route(&opt2, "semantic/S2", &dataset, None));
    }

    #[test]
    fn stale_index_is_rejected_against_a_different_dataset() {
        let dataset = tiny_dataset();
        let (index, _) = ingest_dataset(&dataset).unwrap();
        assert!(validate_index(&index, &dataset).is_ok());
        let other_hyper =
            Hyperparameters::new(1, Resolution::new(96, 54), Duration::from_secs(0.3), 10)
                .unwrap();
        let other = Vcg::new(GenConfig::default()).generate(&other_hyper).unwrap();
        assert!(validate_index(&index, &other).is_err(), "seed drift must invalidate the index");
    }

    #[test]
    fn semantic_labels_parse() {
        assert_eq!(
            SemanticQuery::parse_label("S1"),
            Some(SemanticQuery::Count { class: None, video: None })
        );
        assert!(matches!(
            SemanticQuery::parse_label("S2"),
            Some(SemanticQuery::TopK { class: Some(ObjectClass::Vehicle), window: 8, k: 10 })
        ));
        assert!(matches!(
            SemanticQuery::parse_label("S3"),
            Some(SemanticQuery::Similar { track: 0, k: 10 })
        ));
        assert_eq!(SemanticQuery::parse_label("Q1"), None);
        assert_eq!(SemanticQuery::parse_label("S2").unwrap().kind(), "topk");
    }
}
