//! The `visualroad` command-line tool: generate datasets, run the
//! benchmark, and inspect results without writing Rust.
//!
//! ```text
//! visualroad presets
//! visualroad generate --scale 2 --res 192x108 --duration 1.0 --seed 7 --out /tmp/vr
//! visualroad run --engine functional --queries Q1,Q2a,Q2c --scale 1 --duration 0.5
//! visualroad run --engine all --full-suite --scale 1
//! ```

use visual_road::base::fault::{self, FaultInjector};
use visual_road::prelude::*;
use visual_road::storage::FlatStore;
use visual_road::vdbms::QueryKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("presets") => cmd_presets(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        _ => {
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "visualroad — the Visual Road VDBMS benchmark

USAGE:
  visualroad presets
      List the paper's pregenerated dataset configurations (Table 2).

  visualroad generate [--scale L] [--res WxH] [--duration SECS] [--seed S]
                      [--density D] [--nodes N] [--out DIR]
      Generate a dataset; with --out, write the .vrmf containers there.

  visualroad run [--engine NAME|all] [--queries Q1,Q2a,...|--full-suite]
                 [--scale L] [--res WxH] [--duration SECS] [--seed S]
                 [--batch N] [--online SPEEDUP] [--write DIR] [--no-validate]
                 [--workers N] [--faults SPEC] [--fault-seed S]
                 [--deadline-ms N] [--trace-out FILE] [--metrics-out FILE]
                 [--metrics-mid-out FILE]
                 [--explain | --explain-analyze] [--explain-out FILE]
                 [--folded-out FILE] [--serve-metrics PORT]
                 [--optimizer on|off|explain] [--profile FILE]
      Generate a dataset and drive the chosen engine(s) through the
      benchmark, printing the report. --workers caps both the driver's
      batch scheduler and each engine's pipelined executor (default:
      the VR_WORKERS environment variable, else all cores; 1 forces
      the sequential paths). --faults installs a deterministic fault
      plan (same grammar as the VR_FAULTS environment variable, e.g.
      corrupt_bitstream=0.01,drop_rtp=0.05,stall_stage=kernel:20ms,
      io_fail=read:0.02,panic_kernel=q4:frame37); after the run the
      injected-fault counts are checked against the recovery counters
      and any mismatch exits nonzero. --deadline-ms enforces a
      per-instance latency deadline via cooperative cancellation.
      --trace-out enables span tracing and writes a chrome-trace
      (trace_event JSON) profile loadable in chrome://tracing or
      Perfetto; the VR_TRACE environment variable (any value but 0)
      does the same. --metrics-out writes the process-global metrics
      registry (counters/gauges/latency histograms) as JSON, or as
      flat text when FILE ends in .txt; --metrics-mid-out additionally
      snapshots the registry after the first engine finishes, giving
      validators a genuine before/after pair for counter-monotonicity
      checks. Tracing never changes query results: timestamps exist
      only in the exported profile.
      --explain prints each engine's plan tree per query and exits
      without executing anything; --explain-analyze executes, then
      annotates each plan node with wall/self time, frame/byte flow,
      and allocator-scope peak memory (alloc tracking is switched on
      for the run), exiting nonzero if any plan fails its self-time
      invariant. --explain-out also writes the plans to FILE (a JSON
      document when FILE ends in .json, text otherwise). --folded-out
      enables tracing and writes the span tree as collapsed stacks
      (flamegraph.pl / inferno input). --serve-metrics starts a
      loopback-bound read-only HTTP endpoint for the duration of the
      run (/metrics Prometheus text, /metrics.json, /healthz,
      /explain for the in-flight batch); PORT 0 picks an ephemeral
      port, printed on stderr. VR_ALLOC_TRACK=1 enables allocator
      scope tracking without --explain-analyze.
      --optimizer switches the cost-based optimizer: off (default)
      keeps every engine's hand-tuned plan choices; on lets the cost
      model pick execution policy, fan-out, and cascade order;
      explain additionally prints each chosen-vs-rejected plan table
      after the run. --profile loads a calibration profile written by
      `visualroad calibrate` (default: the built-in seed table);
      parse failures exit nonzero.

  visualroad serve [--port P] [--engine NAME|all] [--queries Q1,Q2a,...]
                   [--scale L] [--res WxH] [--duration SECS] [--seed S]
                   [--workers N] [--degraded-workers N]
                   [--max-concurrent N] [--queue-depth N] [--tenant-quota N]
                   [--degrade-load F] [--shed-load F]
                   [--breaker-trip N] [--breaker-cooldown-ms N]
                   [--deadline-ms N] [--drain-timeout-ms N]
                   [--faults SPEC] [--fault-seed S] [--serve-metrics PORT]
                   [--use-index | --index FILE]
                   [--qlog-out FILE] [--slow-query-ms N]
                   [--slo high=MS,low=MS[,target=F][,window=N]]
      Run the long-lived multi-tenant query server: generate the
      dataset, pregenerate per-query instance pools, load the
      engine(s), bind a loopback TCP endpoint (--port 0 picks an
      ephemeral port; the bound address is printed as
      `serving on ADDR` on stdout), and serve line-based requests
      (EXEC tenant=<id> priority=<high|low> query=<Qn>
      [engine=<name>] [deadline_ms=<n>] [online=<speedup>] | STATS |
      HEALTH | SHUTDOWN) from concurrent sessions. Every request
      passes admission control: a bounded queue (--queue-depth) in
      front of --max-concurrent execution slots, per-tenant
      concurrency quotas (--tenant-quota), load shedding for
      low-priority work past the --degrade-load / --shed-load
      saturation thresholds (degraded requests run with
      --degraded-workers pipeline workers), and per-tenant circuit
      breakers (--breaker-trip consecutive failures open the breaker
      for --breaker-cooldown-ms, doubling per trip, half-open probe
      after). --deadline-ms is the default deadline for requests that
      carry none. SHUTDOWN (or stdin EOF) drains gracefully: stop
      admitting, flush in-flight work for up to --drain-timeout-ms,
      then exit 0 on a clean drain (1 otherwise), printing the final
      per-tenant admission accounting as JSON on stdout. --faults
      installs a deterministic fault plan for chaos serving;
      --serve-metrics additionally exposes the read-only metrics
      endpoint, whose admission.* series mirror the server's
      accounting. --use-index ingests a semantic side index at
      startup (--index FILE loads a prebuilt .vrsx instead; an
      unusable file falls back to rescan with a warning) and serves
      the semantic query class S1 (count) / S2 (top-k) / S3
      (similarity) from it; every OK response reports which route
      served it (route=index|rescan) and the per-tenant accounting
      splits index_served vs rescan_served. --qlog-out appends one
      structured JSON line per request (the query log) to FILE;
      --slow-query-ms captures a full EXPLAIN ANALYZE exemplar inline
      in the log for requests at or over the threshold. --slo sets
      per-priority latency objectives (milliseconds) for the
      per-tenant SLO tracker: the final STATS gains an `slo` block,
      and with --serve-metrics the endpoint serves /slo (burn rates)
      and /requests (recent query-log records).

  visualroad ingest [--scale L] [--res WxH] [--duration SECS] [--seed S]
                    [--density D] [--nodes N] [--out FILE]
      Run detection/tracking ONCE over the dataset's metadata box
      tracks, associate detections into tracklets, embed each tracklet
      into a scalar-quantized feature vector, and persist everything
      as a .vrsx container side index (default:
      results/index/dataset.vrsx). Ingest is fully deterministic: the
      same hyperparameters always produce a byte-identical file.

  visualroad search [--scale L] [--res WxH] [--duration SECS] [--seed S]
                    [--kind count|topk|similar] [--class vehicle|pedestrian|any]
                    [--window N] [--k N] [--track N] [--video N]
                    [--index FILE | --rescan] [--repeat N]
                    [--profile FILE] [--explain] [--out FILE]
      Answer one semantic query over the dataset, either from a .vrsx
      side index (--index; no frame ever decoded) or by redoing the
      full scan/associate pass per repetition (--rescan). Without
      either flag the index is built in memory first. The index-vs-
      rescan choice is cost-based: the optimizer compares an IndexScan
      candidate against the metadata rescan and --explain prints the
      chosen-vs-rejected table. A corrupt, truncated, or stale index
      file fails CLOSED into rescan (warning on stderr, exit 0).
      --repeat measures p50/p95 latency over N runs; for topk the
      answer's recall@k against VCG scene geometry is reported too.
      --out writes a one-line JSON artifact with route, latency
      quantiles, recall, and the rendered answer.

  visualroad calibrate [--scale L] [--res WxH] [--duration SECS] [--seed S]
                       [--out FILE]
      Run probe queries on a generated dataset, derive per-unit costs
      (ns/pixel decode, ns/MAC inference, cascade skip rate, ...) from
      the per-stage metrics, and write the optimizer calibration
      profile as deterministic JSON (default:
      results/optimizer_profile.json).

ENGINES: reference | batch | functional | cascade | all
QUERIES: Q1 Q2a Q2b Q2c Q2d Q3 Q4 Q5 Q6a Q6b Q7 Q8 Q9 Q10"
    );
}

/// Tiny flag parser: `--name value` / `--name=value` pairs plus
/// boolean flags.
struct Flags(Vec<(String, Option<String>)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument {flag:?}"));
            };
            if let Some((name, value)) = name.split_once('=') {
                out.push((name.to_string(), Some(value.to_string())));
                continue;
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            out.push((name.to_string(), value));
        }
        Ok(Self(out))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|(n, _)| n == name)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{name}: {v:?}")),
        }
    }
}

fn parse_res(flags: &Flags, default: Resolution) -> Result<Resolution, String> {
    match flags.get("res") {
        None => Ok(default),
        Some(v) => {
            let (w, h) = v.split_once('x').ok_or_else(|| format!("--res wants WxH, got {v:?}"))?;
            Ok(Resolution::new(
                w.parse().map_err(|_| format!("bad width {w:?}"))?,
                h.parse().map_err(|_| format!("bad height {h:?}"))?,
            ))
        }
    }
}

fn hyper_from(flags: &Flags) -> Result<Hyperparameters, String> {
    let scale = flags.parsed("scale", 1u32)?;
    let res = parse_res(flags, Resolution::new(192, 108))?;
    let duration = Duration::from_secs(flags.parsed("duration", 1.0f64)?);
    let seed = flags.parsed("seed", 0u64)?;
    Hyperparameters::new(scale, res, duration, seed).map_err(|e| e.to_string())
}

fn cmd_presets() -> i32 {
    println!("{:<10} {:>3} {:>12} {:>10}", "name", "L", "resolution", "duration");
    for p in &visual_road::base::presets::PRESETS {
        println!(
            "{:<10} {:>3} {:>12} {:>9}m",
            p.name,
            p.scale,
            p.resolution.to_string(),
            p.duration_mins
        );
    }
    0
}

fn cmd_generate(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let hyper = match hyper_from(&flags) {
        Ok(h) => h,
        Err(e) => return fail(&e),
    };
    let cfg = GenConfig {
        density_scale: flags.parsed("density", 0.15f64).unwrap_or(0.15),
        nodes: flags.parsed("nodes", 1usize).unwrap_or(1),
        ..Default::default()
    };
    eprintln!(
        "generating L={} R={} t={} seed={} ...",
        hyper.scale, hyper.resolution, hyper.duration, hyper.seed
    );
    let t0 = std::time::Instant::now();
    let dataset = match Vcg::new(cfg).generate(&hyper) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };
    println!(
        "generated {} videos / {} frames / {:.1} KiB in {:.2}s",
        dataset.videos.len(),
        dataset.total_frames(),
        dataset.total_bytes() as f64 / 1024.0,
        t0.elapsed().as_secs_f64()
    );
    if let Some(dir) = flags.get("out") {
        let store = match FlatStore::open(dir) {
            Ok(s) => s,
            Err(e) => return fail(&e.to_string()),
        };
        if let Err(e) = dataset.write_to_store(&store) {
            return fail(&e.to_string());
        }
        println!("wrote {} files to {dir}", dataset.videos.len());
    }
    0
}

fn parse_queries(flags: &Flags) -> Result<Vec<QueryKind>, String> {
    if flags.has("full-suite") {
        return Ok(QueryKind::ALL.to_vec());
    }
    let Some(spec) = flags.get("queries") else {
        return Ok(vec![QueryKind::Q1Select, QueryKind::Q2aGrayscale]);
    };
    spec.split(',')
        .map(|q| {
            let q = q.trim().to_ascii_uppercase();
            QueryKind::ALL
                .iter()
                .find(|k| {
                    k.label().replace(['(', ')'], "").to_ascii_uppercase() == q
                        || k.label().to_ascii_uppercase() == q
                })
                .copied()
                .ok_or_else(|| format!("unknown query {q:?}"))
        })
        .collect()
}

fn engines_from(name: &str) -> Result<Vec<Box<dyn Vdbms>>, String> {
    Ok(match name {
        "reference" => vec![Box::new(ReferenceEngine::new())],
        "batch" => vec![Box::new(BatchEngine::new())],
        "functional" => vec![Box::new(FunctionalEngine::new())],
        "cascade" => vec![Box::new(CascadeEngine::new())],
        "all" => vec![
            Box::new(ReferenceEngine::new()),
            Box::new(BatchEngine::new()),
            Box::new(FunctionalEngine::new()),
            Box::new(CascadeEngine::new()),
        ],
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn cmd_run(args: &[String]) -> i32 {
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let hyper = match hyper_from(&flags) {
        Ok(h) => h,
        Err(e) => return fail(&e),
    };
    let queries = match parse_queries(&flags) {
        Ok(q) => q,
        Err(e) => return fail(&e),
    };
    let mut engines = match engines_from(flags.get("engine").unwrap_or("reference")) {
        Ok(e) => e,
        Err(e) => return fail(&e),
    };

    eprintln!("generating dataset ...");
    let dataset = match Vcg::new(GenConfig::default()).generate(&hyper) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };

    let mut cfg = VcdConfig {
        validate: !flags.has("no-validate"),
        ..Default::default()
    };
    if let Some(n) = flags.get("batch") {
        match n.parse() {
            Ok(n) => cfg.batch_size = Some(n),
            Err(_) => return fail("--batch wants a number"),
        }
    }
    if let Some(s) = flags.get("online") {
        match s.parse() {
            Ok(speedup) => cfg.mode = ExecutionMode::Online { speedup },
            Err(_) => return fail("--online wants a speedup factor"),
        }
    }
    if let Some(dir) = flags.get("write") {
        match FlatStore::open(dir) {
            Ok(store) => cfg.write_store = Some(store),
            Err(e) => return fail(&e.to_string()),
        }
    }
    if let Some(w) = flags.get("workers") {
        match w.parse::<usize>() {
            Ok(w) if w >= 1 => {
                cfg.pipeline_workers = Some(w);
                cfg.batch_workers = Some(w);
            }
            _ => return fail("--workers wants a positive integer"),
        }
    }
    if let Some(ms) = flags.get("deadline-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms >= 1 => {
                cfg.instance_deadline = Some(std::time::Duration::from_millis(ms))
            }
            _ => return fail("--deadline-ms wants a positive integer"),
        }
    }
    // Allocator scope tracking: VR_ALLOC_TRACK, or implied by
    // --explain-analyze (whose plan nodes report peak memory).
    vr_base::obs::alloc::init_from_env();
    let explain_only = flags.has("explain");
    if flags.has("explain-analyze") {
        cfg.explain = visual_road::ExplainMode::Analyze;
        vr_base::obs::alloc::set_tracking(true);
    }
    if let Some(mode) = flags.get("optimizer") {
        match mode.parse::<visual_road::vdbms::OptimizerMode>() {
            Ok(mode) => cfg.optimizer = mode,
            Err(e) => return fail(&e),
        }
    }
    if let Some(path) = flags.get("profile") {
        match visual_road::vdbms::CalibrationProfile::load(std::path::Path::new(path)) {
            Ok(profile) => cfg.profile = Some(profile),
            Err(e) => return fail(&format!("cannot load calibration profile {path}: {e}")),
        }
    }
    let optimizer_mode = cfg.optimizer;

    // The fault plan is installed only after dataset generation, so
    // chaos runs exercise the query path against a pristine dataset.
    let injector = match flags.get("faults") {
        Some(spec) => {
            let seed = match flags.parsed("fault-seed", 0u64) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            match FaultInjector::from_spec(spec, seed) {
                Ok(inj) => {
                    let inj = std::sync::Arc::new(inj);
                    fault::install(Some(std::sync::Arc::clone(&inj)));
                    Some(inj)
                }
                Err(e) => return fail(&e.to_string()),
            }
        }
        None => match fault::init_from_env() {
            Ok(inj) => inj,
            Err(e) => return fail(&e.to_string()),
        },
    };
    if let Some(inj) = &injector {
        eprintln!("fault plan active (seed {}): {:?}", inj.seed(), inj.plan());
    }

    // Tracing is opt-in: `--trace-out FILE`, or VR_TRACE as the
    // destination path (any value but empty/0; `VR_TRACE=1` defaults
    // to trace.json). Enabled only after dataset generation so the
    // profile covers the query path, not the generator.
    let trace_out: Option<String> = flags
        .get("trace-out")
        .map(str::to_string)
        .or_else(|| match std::env::var("VR_TRACE").ok().filter(|v| !v.is_empty() && v != "0") {
            Some(v) if v == "1" => Some("trace.json".to_string()),
            other => other,
        });
    // Collapsed-stacks export folds the span buffer, so it implies
    // tracing even without a chrome-trace destination.
    let folded_out: Option<String> = flags.get("folded-out").map(str::to_string);
    if trace_out.is_some() || folded_out.is_some() {
        vr_base::obs::trace::set_enabled(true);
    }

    // The live endpoint is read-only over registry snapshots and must
    // never perturb results (the obs-gate CI leg diffs a served vs.
    // unserved run byte for byte).
    let server = match flags.get("serve-metrics") {
        Some(port) => match port.parse::<u16>() {
            Ok(port) => match vr_base::obs::serve::MetricsServer::start(port) {
                Ok(server) => {
                    eprintln!("serving metrics on http://{}", server.addr());
                    Some(server)
                }
                Err(e) => return fail(&format!("cannot bind metrics endpoint: {e}")),
            },
            Err(_) => return fail("--serve-metrics wants a port number (0 = ephemeral)"),
        },
        None => None,
    };

    let vcd = Vcd::new(&dataset, cfg);

    // EXPLAIN without execution: print (and optionally save) each
    // engine's plan per query, then exit.
    if explain_only {
        let mut doc = String::new();
        for engine in &engines {
            match vcd.explain(engine.as_ref(), &queries) {
                Ok(plans) => {
                    for (kind, text) in plans {
                        doc.push_str(&format!("== {} {} ==\n{text}", engine.name(), kind.label()));
                    }
                }
                Err(e) => return fail(&e.to_string()),
            }
        }
        print!("{doc}");
        if let Some(path) = flags.get("explain-out") {
            if let Err(e) = std::fs::write(path, &doc) {
                return fail(&format!("cannot write plans to {path}: {e}"));
            }
            eprintln!("wrote plans to {path}");
        }
        return 0;
    }

    let mut explain_doc = String::new();
    let mut explain_json: Vec<String> = Vec::new();
    let mut explain_violations = 0usize;
    let mut metrics_mid_out = flags.get("metrics-mid-out");
    for engine in engines.iter_mut() {
        match vcd.run_queries(engine.as_mut(), &queries) {
            Ok(report) => {
                println!("{report}");
                for q in &report.queries {
                    let QueryStatus::Completed { explain: Some(info), .. } = &q.status else {
                        continue;
                    };
                    explain_doc.push_str(&format!(
                        "== {} {} ==\n{}",
                        report.engine,
                        q.kind.label(),
                        info.text
                    ));
                    explain_json.push(format!(
                        "{{\"engine\": \"{}\", \"query\": \"{}\", \"plan\": {}}}",
                        visual_road::base::obs::json_escape(&report.engine),
                        q.kind.label(),
                        info.json.trim_end()
                    ));
                    if let Some(err) = &info.verify_error {
                        eprintln!(
                            "explain verify FAILED ({} {}): {err}",
                            report.engine,
                            q.kind.label()
                        );
                        explain_violations += 1;
                    }
                }
            }
            Err(e) => return fail(&e.to_string()),
        }
        // A mid-run registry snapshot after the first engine: paired
        // with the final --metrics-out it gives validators a true
        // before/after monotonicity fixture from one process.
        if let Some(path) = metrics_mid_out.take() {
            let snap = vr_base::obs::metrics::snapshot();
            let body = if path.ends_with(".txt") { snap.to_text() } else { snap.to_json() };
            if let Err(e) = std::fs::write(path, body) {
                return fail(&format!("cannot write metrics to {path}: {e}"));
            }
            eprintln!("wrote mid-run metrics snapshot to {path}");
        }
    }
    // `--optimizer explain`: dump every cached chosen-vs-rejected
    // table after the reports, one block per engine/query key.
    if optimizer_mode == visual_road::vdbms::OptimizerMode::Explain {
        if let Some(opt) = vcd.optimizer() {
            for decision in opt.decisions() {
                println!("== optimizer {} ==", decision.key);
                print!("{}", decision.render_text());
            }
        }
    }
    if let Some(path) = flags.get("explain-out") {
        let body = if path.ends_with(".json") {
            format!("[{}]\n", explain_json.join(",\n "))
        } else {
            explain_doc.clone()
        };
        if let Err(e) = std::fs::write(path, body) {
            return fail(&format!("cannot write plans to {path}: {e}"));
        }
        eprintln!("wrote plans to {path}");
    }

    if trace_out.is_some() || folded_out.is_some() {
        vr_base::obs::trace::set_enabled(false);
    }
    // Fold before the chrome-trace export: `trace::save` drains the
    // buffer the fold reads.
    if let Some(path) = &folded_out {
        match vr_base::obs::folded::save(path) {
            Ok(n) => eprintln!("wrote {n} folded stacks to {path}"),
            Err(e) => return fail(&format!("cannot write folded stacks to {path}: {e}")),
        }
    }
    if let Some(path) = &trace_out {
        match vr_base::obs::trace::save(path) {
            Ok(n) => eprintln!("wrote {n} trace events to {path}"),
            Err(e) => return fail(&format!("cannot write trace to {path}: {e}")),
        }
    }
    if let Some(path) = flags.get("metrics-out") {
        let snap = vr_base::obs::metrics::snapshot();
        let body = if path.ends_with(".txt") { snap.to_text() } else { snap.to_json() };
        if let Err(e) = std::fs::write(path, body) {
            return fail(&format!("cannot write metrics to {path}: {e}"));
        }
        eprintln!("wrote metrics snapshot to {path}");
    }

    // Stop the endpoint before verdicts so nothing polls a dead run.
    drop(server);
    let fault_code = match &injector {
        Some(inj) => verify_fault_accounting(inj),
        None => 0,
    };
    if explain_violations > 0 {
        eprintln!("error: {explain_violations} plan(s) failed EXPLAIN ANALYZE verification");
        return 1;
    }
    fault_code
}

/// `visualroad serve`: the long-lived multi-tenant query server.
/// Generates the dataset, pregenerates per-query instance pools,
/// loads the engines, binds loopback TCP, and serves until a
/// `SHUTDOWN` request (or stdin EOF) drains it gracefully.
fn cmd_serve(args: &[String]) -> i32 {
    use visual_road::base::admission::AdmissionConfig;
    use visual_road::server::{QueryServer, ServerConfig};

    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let hyper = match hyper_from(&flags) {
        Ok(h) => h,
        Err(e) => return fail(&e),
    };
    let queries = match parse_queries(&flags) {
        Ok(q) => q,
        Err(e) => return fail(&e),
    };
    let engines = match engines_from(flags.get("engine").unwrap_or("batch")) {
        Ok(e) => e,
        Err(e) => return fail(&e),
    };

    let admission_defaults = AdmissionConfig::default();
    let admission = AdmissionConfig {
        max_concurrent: match flags.parsed("max-concurrent", admission_defaults.max_concurrent) {
            Ok(n) if n >= 1 => n,
            _ => return fail("--max-concurrent wants a positive integer"),
        },
        queue_depth: match flags.parsed("queue-depth", admission_defaults.queue_depth) {
            Ok(n) => n,
            _ => return fail("--queue-depth wants an integer"),
        },
        tenant_quota: match flags.parsed("tenant-quota", admission_defaults.tenant_quota) {
            Ok(n) if n >= 1 => n,
            _ => return fail("--tenant-quota wants a positive integer"),
        },
        degrade_load: match flags.parsed("degrade-load", admission_defaults.degrade_load) {
            Ok(f) if f > 0.0 => f,
            _ => return fail("--degrade-load wants a positive saturation fraction"),
        },
        shed_load: match flags.parsed("shed-load", admission_defaults.shed_load) {
            Ok(f) if f > 0.0 => f,
            _ => return fail("--shed-load wants a positive saturation fraction"),
        },
        breaker_trip: match flags.parsed("breaker-trip", admission_defaults.breaker_trip) {
            Ok(n) if n >= 1 => n,
            _ => return fail("--breaker-trip wants a positive integer"),
        },
        breaker_cooldown: match flags.parsed(
            "breaker-cooldown-ms",
            admission_defaults.breaker_cooldown.as_millis() as u64,
        ) {
            Ok(ms) => std::time::Duration::from_millis(ms),
            _ => return fail("--breaker-cooldown-ms wants an integer"),
        },
    };
    let cfg = ServerConfig {
        port: match flags.parsed("port", 0u16) {
            Ok(p) => p,
            _ => return fail("--port wants a port number (0 = ephemeral)"),
        },
        admission,
        workers: match flags.parsed("workers", vr_base::sync::worker_budget()) {
            Ok(n) if n >= 1 => n,
            _ => return fail("--workers wants a positive integer"),
        },
        degraded_workers: match flags.parsed("degraded-workers", 1usize) {
            Ok(n) if n >= 1 => n,
            _ => return fail("--degraded-workers wants a positive integer"),
        },
        default_deadline: match flags.get("deadline-ms").map(str::parse::<u64>) {
            Some(Ok(ms)) if ms >= 1 => Some(std::time::Duration::from_millis(ms)),
            Some(_) => return fail("--deadline-ms wants a positive integer"),
            None => None,
        },
        drain_timeout: match flags.parsed("drain-timeout-ms", 10_000u64) {
            Ok(ms) => std::time::Duration::from_millis(ms),
            _ => return fail("--drain-timeout-ms wants an integer"),
        },
        queries,
        use_index: flags.has("use-index"),
        index_path: flags.get("index").map(str::to_string),
        qlog_path: flags.get("qlog-out").map(str::to_string),
        slow_query: match flags.get("slow-query-ms").map(str::parse::<u64>) {
            Some(Ok(ms)) if ms >= 1 => Some(std::time::Duration::from_millis(ms)),
            Some(_) => return fail("--slow-query-ms wants a positive integer"),
            None => None,
        },
        slo: match flags.get("slo") {
            Some(spec) => match visual_road::base::obs::slo::SloConfig::parse(spec) {
                Ok(cfg) => cfg,
                Err(e) => return fail(&format!("--slo: {e}")),
            },
            None => visual_road::base::obs::slo::SloConfig::default(),
        },
    };

    eprintln!("generating dataset ...");
    let dataset = match Vcg::new(GenConfig::default()).generate(&hyper) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };

    // Fault plan after dataset generation, exactly like `run`: chaos
    // serving exercises the query path against a pristine dataset.
    let injector = match flags.get("faults") {
        Some(spec) => {
            let seed = match flags.parsed("fault-seed", 0u64) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            match FaultInjector::from_spec(spec, seed) {
                Ok(inj) => {
                    let inj = std::sync::Arc::new(inj);
                    fault::install(Some(std::sync::Arc::clone(&inj)));
                    Some(inj)
                }
                Err(e) => return fail(&e.to_string()),
            }
        }
        None => match fault::init_from_env() {
            Ok(inj) => inj,
            Err(e) => return fail(&e.to_string()),
        },
    };
    if let Some(inj) = &injector {
        eprintln!("fault plan active (seed {}): {:?}", inj.seed(), inj.plan());
    }

    let metrics_server = match flags.get("serve-metrics") {
        Some(port) => match port.parse::<u16>() {
            Ok(port) => match vr_base::obs::serve::MetricsServer::start(port) {
                Ok(server) => {
                    eprintln!("serving metrics on http://{}", server.addr());
                    Some(server)
                }
                Err(e) => return fail(&format!("cannot bind metrics endpoint: {e}")),
            },
            Err(_) => return fail("--serve-metrics wants a port number (0 = ephemeral)"),
        },
        None => None,
    };

    let server = match QueryServer::start(dataset, engines, cfg) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    // The bound address goes to stdout so drivers can scrape it even
    // with --port 0.
    println!("serving on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // stdin EOF (the parent closed the pipe) is the out-of-band stop
    // signal; a TCP SHUTDOWN drains the same way.
    let handle = server.shutdown_handle();
    let _ = std::thread::Builder::new()
        .name("vr-serve-stdin".to_string())
        .spawn(move || {
            let mut buf = String::new();
            loop {
                buf.clear();
                match std::io::stdin().read_line(&mut buf) {
                    Ok(0) | Err(_) => {
                        handle.shutdown();
                        return;
                    }
                    Ok(_) => {
                        if buf.trim().eq_ignore_ascii_case("shutdown") {
                            handle.shutdown();
                            return;
                        }
                    }
                }
            }
        });

    let report = server.wait();
    print!("{}", report.stats_json);
    if let Some(ms) = metrics_server {
        ms.stop();
    }
    if report.clean {
        eprintln!("drained cleanly");
        0
    } else {
        eprintln!("drain timed out with work still in flight");
        1
    }
}

/// `visualroad calibrate`: run probe queries on a generated dataset,
/// derive per-unit costs from the per-stage metrics in the reports,
/// and persist the optimizer's calibration profile as deterministic
/// JSON. Scheduling constants (thread spawn, parallel efficiency,
/// gate cost) keep their built-in seeds — they need contended
/// multi-core probes this single pass cannot provide.
fn cmd_calibrate(args: &[String]) -> i32 {
    use visual_road::vdbms::{CalibrationProfile, PipelineSnapshot, StageKind, StageSnapshot};
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let hyper = match hyper_from(&flags) {
        Ok(h) => h,
        Err(e) => return fail(&e),
    };
    let out = flags.get("out").unwrap_or("results/optimizer_profile.json");

    eprintln!("generating calibration dataset ...");
    let dataset = match Vcg::new(GenConfig::default()).generate(&hyper) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };
    let px = (hyper.resolution.width as u64 * hyper.resolution.height as u64).max(1) as f64;

    // Probes run without validation (the oracle's reference pipelines
    // would pollute the stage aggregates) and fully sequentially, so
    // the derived per-unit costs are undiluted by scheduler overlap.
    let vcd = Vcd::new(
        &dataset,
        VcdConfig {
            validate: false,
            batch_size: Some(2),
            pipeline_workers: Some(1),
            batch_workers: Some(1),
            ..Default::default()
        },
    );
    let probe = |engine: &mut dyn Vdbms, kind: QueryKind| -> Result<PipelineSnapshot, String> {
        let report = vcd.run_queries(engine, &[kind]).map_err(|e| e.to_string())?;
        report
            .queries
            .iter()
            .find_map(|q| match &q.status {
                QueryStatus::Completed { stages, .. } => Some(*stages),
                _ => None,
            })
            .ok_or_else(|| format!("probe {} did not complete", kind.label()))
    };

    eprintln!("probing per-pixel stages (reference Q2a) ...");
    let mut reference = ReferenceEngine::new();
    let pixel_probe = match probe(&mut reference, QueryKind::Q2aGrayscale) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    eprintln!("probing NN inference (reference Q2c) ...");
    let nn_probe = match probe(&mut reference, QueryKind::Q2cBoxes) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    eprintln!("probing cascade skip rate (cascade Q2c) ...");
    let mut cascade = CascadeEngine::new();
    if let Err(e) = probe(&mut cascade, QueryKind::Q2cBoxes) {
        return fail(&e);
    }
    let (cheap, full) = cascade.cascade_stats();

    let mut profile = CalibrationProfile::builtin();
    let per_frame =
        |s: StageSnapshot| (s.frames > 0).then(|| s.nanos as f64 / s.frames as f64);
    if let Some(v) = per_frame(pixel_probe.stage(StageKind::Decode)) {
        profile.decode_ns_per_pixel = v / px;
    }
    if let Some(v) = per_frame(pixel_probe.stage(StageKind::Encode)) {
        profile.encode_ns_per_pixel = v / px;
    }
    if let Some(v) = per_frame(pixel_probe.stage(StageKind::Scan)) {
        profile.scan_ns_per_frame = v;
    }
    if let Some(v) = per_frame(pixel_probe.stage(StageKind::Sink)) {
        profile.sink_ns_per_frame = v;
    }
    if let Some(v) = per_frame(pixel_probe.stage(StageKind::Kernel)) {
        profile.kernel_ns_per_pixel = v / px;
    }
    // The reference Q2(c) probe runs the full model on every frame at
    // the default MAC budget over the network-input floor.
    let net_px = px.max(visual_road::vision::yolo::NETWORK_INPUT_PIXELS as f64);
    let full_macs = visual_road::vdbms::cascade::CascadeConfig::default().full_macs_per_pixel;
    if let Some(v) = per_frame(nn_probe.stage(StageKind::Kernel)) {
        profile.nn_ns_per_mac = v / (net_px * full_macs);
    }
    if cheap + full > 0 {
        profile.cascade_skip_rate = cheap as f64 / (cheap + full) as f64;
    }
    // A refreshed profile restarts the feedback loop from scratch.
    profile.samples = 0;
    profile.observed_error = 0.0;
    profile.scale = 1.0;

    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return fail(&format!("cannot create {}: {e}", dir.display()));
            }
        }
    }
    if let Err(e) = std::fs::write(out, profile.to_json()) {
        return fail(&format!("cannot write profile to {out}: {e}"));
    }
    eprintln!("wrote calibration profile to {out}");
    print!("{}", profile.to_json());
    0
}

/// `visualroad ingest`: the ingest-once pass. Generate the dataset,
/// scan its metadata box tracks, and persist the tracklet side index.
fn cmd_ingest(args: &[String]) -> i32 {
    use visual_road::semantic::{ingest_dataset, IngestStats};
    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let hyper = match hyper_from(&flags) {
        Ok(h) => h,
        Err(e) => return fail(&e),
    };
    let cfg = GenConfig {
        density_scale: flags.parsed("density", 0.15f64).unwrap_or(0.15),
        nodes: flags.parsed("nodes", 1usize).unwrap_or(1),
        ..Default::default()
    };
    let out = flags.get("out").unwrap_or("results/index/dataset.vrsx");

    eprintln!("generating dataset ...");
    let dataset = match Vcg::new(cfg).generate(&hyper) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };
    let t0 = std::time::Instant::now();
    let (index, bytes) = match ingest_dataset(&dataset) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    let stats = IngestStats::of(&index, bytes.len());
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return fail(&format!("cannot create {}: {e}", dir.display()));
            }
        }
    }
    if let Err(e) = std::fs::write(out, &bytes) {
        return fail(&format!("cannot write side index to {out}: {e}"));
    }
    println!(
        "ingested {} videos / {} frames / {} tracklets / {} B in {:.2}s",
        stats.videos,
        stats.frames,
        stats.tracklets,
        stats.bytes,
        t0.elapsed().as_secs_f64()
    );
    println!("wrote {out}");
    0
}

/// `visualroad search`: answer one semantic query, via the side index
/// or via full rescan, with latency quantiles and (for top-k) recall
/// against VCG scene geometry.
fn cmd_search(args: &[String]) -> i32 {
    use visual_road::semantic::{
        answer_with_index, answer_with_rescan, decide_route, ingest_dataset, recall_at_k,
        truth_top_segments, validate_index, SemanticAnswer, SemanticQuery,
    };
    use visual_road::vdbms::{CalibrationProfile, Optimizer, Workload};
    use vr_index::SemanticIndex;

    let flags = match Flags::parse(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let hyper = match hyper_from(&flags) {
        Ok(h) => h,
        Err(e) => return fail(&e),
    };
    let class = match flags.get("class").unwrap_or("any") {
        "vehicle" => Some(visual_road::scene::entity::ObjectClass::Vehicle),
        "pedestrian" => Some(visual_road::scene::entity::ObjectClass::Pedestrian),
        "any" => None,
        other => return fail(&format!("unknown class {other:?} (vehicle|pedestrian|any)")),
    };
    let window = match flags.parsed("window", 8u32) {
        Ok(w) if w >= 1 => w,
        _ => return fail("--window wants a positive integer"),
    };
    let k = match flags.parsed("k", 10usize) {
        Ok(k) if k >= 1 => k,
        _ => return fail("--k wants a positive integer"),
    };
    let video = match flags.get("video").map(str::parse::<u32>) {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(_)) => return fail("--video wants a video index"),
    };
    let track = match flags.parsed("track", 0u32) {
        Ok(t) => t,
        _ => return fail("--track wants a tracklet id"),
    };
    let kind = flags.get("kind").unwrap_or("topk");
    let query = match kind {
        "count" => SemanticQuery::Count { class, video },
        "topk" => SemanticQuery::TopK { class, window, k },
        "similar" => SemanticQuery::Similar { track, k },
        other => return fail(&format!("unknown kind {other:?} (count|topk|similar)")),
    };
    let repeat = match flags.parsed("repeat", 5usize) {
        Ok(r) if r >= 1 => r,
        _ => return fail("--repeat wants a positive integer"),
    };

    eprintln!("generating dataset ...");
    let dataset = match Vcg::new(GenConfig::default()).generate(&hyper) {
        Ok(d) => d,
        Err(e) => return fail(&e.to_string()),
    };

    // Acquire the index: load + validate a side-index file, build one
    // in memory, or skip entirely under --rescan. Unusable files fail
    // CLOSED into the rescan route — a warning, never a wrong answer.
    let index: Option<SemanticIndex> = if flags.has("rescan") {
        None
    } else if let Some(path) = flags.get("index") {
        match std::fs::read(path) {
            Err(e) => return fail(&format!("cannot read side index {path}: {e}")),
            Ok(bytes) => match SemanticIndex::from_sidecar_bytes(&bytes)
                .and_then(|idx| validate_index(&idx, &dataset).map(|()| idx))
            {
                Ok(idx) => Some(idx),
                Err(e) => {
                    eprintln!("warning: side index {path} unusable ({e}); falling back to full rescan");
                    None
                }
            },
        }
    } else {
        eprintln!("no --index given; ingesting in memory ...");
        match ingest_dataset(&dataset) {
            Ok((idx, _)) => Some(idx),
            Err(e) => return fail(&e.to_string()),
        }
    };

    // Cost-based route decision, recorded for EXPLAIN. With no usable
    // index the IndexScan policy is not a candidate at all.
    let profile = match flags.get("profile") {
        Some(path) => match CalibrationProfile::load(std::path::Path::new(path)) {
            Ok(p) => p,
            Err(e) => return fail(&format!("cannot load calibration profile {path}: {e}")),
        },
        None => CalibrationProfile::builtin(),
    };
    let frames: u64 = dataset
        .traffic_indices()
        .iter()
        .map(|&vi| dataset.videos[vi].frame_count() as u64)
        .sum();
    let opt = Optimizer::new(profile).with_workload(Workload {
        width: hyper.resolution.width,
        height: hyper.resolution.height,
        frames,
    });
    let key = format!("semantic/{}", query.kind());
    let use_index =
        decide_route(&opt, &key, &dataset, index.as_ref().map(|i| i.len() as u64));
    if flags.has("explain") {
        if let Some(decision) = opt.decision(&key) {
            print!("{}", decision.render_text());
        }
    }

    let mut latencies_ns: Vec<u64> = Vec::with_capacity(repeat);
    let mut answer: Option<SemanticAnswer> = None;
    for _ in 0..repeat {
        let t0 = std::time::Instant::now();
        let a = if use_index {
            answer_with_index(index.as_ref().expect("index route implies index"), &query)
        } else {
            answer_with_rescan(&dataset, &query)
        };
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
        match a {
            Ok(a) => answer = Some(a),
            Err(e) => return fail(&e.to_string()),
        }
    }
    latencies_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        let idx = ((latencies_ns.len() as f64 * q).ceil() as usize).saturating_sub(1);
        latencies_ns[idx.min(latencies_ns.len() - 1)] as f64 / 1000.0
    };
    let (p50_us, p95_us) = (pct(0.50), pct(0.95));
    let answer = answer.expect("repeat >= 1");
    let route = if use_index { "index" } else { "rescan" };

    // Top-k answers are graded against scene geometry, not against the
    // scan that produced them.
    let recall = match (&query, &answer) {
        (SemanticQuery::TopK { class, window, k }, SemanticAnswer::Segments(got)) => {
            match truth_top_segments(&dataset, *class, *window) {
                Ok(truth) => Some(recall_at_k(&truth, got, *k)),
                Err(e) => return fail(&e.to_string()),
            }
        }
        _ => None,
    };

    println!(
        "kind={kind} route={route} repeat={repeat} p50_us={p50_us:.3} p95_us={p95_us:.3}{}",
        match recall {
            Some(r) => format!(" recall@{k}={r:.4}"),
            None => String::new(),
        }
    );
    println!("{}", answer.render());

    if let Some(path) = flags.get("out") {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    return fail(&format!("cannot create {}: {e}", dir.display()));
                }
            }
        }
        let recall_field = match recall {
            Some(r) => format!("\"recall\": {r:.6}, "),
            None => String::new(),
        };
        let doc = format!(
            "{{\"kind\": \"{kind}\", \"route\": \"{route}\", \"repeat\": {repeat}, \
             \"p50_us\": {p50_us:.3}, \"p95_us\": {p95_us:.3}, {recall_field}\
             \"answer\": \"{}\"}}\n",
            visual_road::base::obs::json_escape(&answer.render())
        );
        if let Err(e) = std::fs::write(path, doc) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
    }
    0
}

/// Cross-check what the injector says it injected against what the
/// recovery layers say they absorbed. Any mismatch means a fault
/// escaped its handler (or a handler double-counted) — the chaos gate
/// fails on it.
fn verify_fault_accounting(inj: &FaultInjector) -> i32 {
    let injected = inj.injected();
    let recovered = fault::degradation_snapshot();
    println!(
        "fault accounting: injected {injected:?}\n\
         fault accounting: recovered {recovered:?}"
    );
    let mut bad = Vec::new();
    if injected.corrupt_bitstream != recovered.skipped_samples {
        bad.push(format!(
            "corrupted samples {} != skipped samples {}",
            injected.corrupt_bitstream, recovered.skipped_samples
        ));
    }
    if recovered.concealed_frames < recovered.skipped_samples {
        bad.push(format!(
            "concealed frames {} < skipped samples {}",
            recovered.concealed_frames, recovered.skipped_samples
        ));
    }
    if injected.drop_rtp != recovered.skipped_packets {
        bad.push(format!(
            "dropped rtp packets {} != skipped packets {}",
            injected.drop_rtp, recovered.skipped_packets
        ));
    }
    if injected.io_fail_read + injected.io_fail_write
        != recovered.io_retries + recovered.io_give_ups
    {
        bad.push(format!(
            "injected io failures {} != retries {} + give-ups {}",
            injected.io_fail_read + injected.io_fail_write,
            recovered.io_retries,
            recovered.io_give_ups
        ));
    }
    if injected.kernel_panics != recovered.stage_panics {
        bad.push(format!(
            "injected kernel panics {} != contained stage panics {}",
            injected.kernel_panics, recovered.stage_panics
        ));
    }
    if injected.stalls != recovered.stalls_absorbed {
        bad.push(format!(
            "injected stalls {} != absorbed stalls {}",
            injected.stalls, recovered.stalls_absorbed
        ));
    }
    if bad.is_empty() {
        println!("fault accounting: OK");
        0
    } else {
        for b in &bad {
            eprintln!("fault accounting MISMATCH: {b}");
        }
        1
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    1
}
