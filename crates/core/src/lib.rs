//! # Visual Road
//!
//! A from-scratch Rust implementation of **Visual Road: A Video Data
//! Management Benchmark** (Haynes et al., SIGMOD 2019): a benchmark
//! for video database management systems (VDBMSs) built on a
//! deterministic simulated metropolitan area.
//!
//! The benchmark has three pillars, all provided by this crate and its
//! substrates:
//!
//! * the **Visual City Generator** ([`vcg`]) — turns hyperparameters
//!   `{L, R, t, s}` into a dataset of realistic, temporally-coherent
//!   traffic- and panoramic-camera videos with exact ground truth;
//! * the **Visual City Driver** ([`vcd`]) — submits query batches
//!   (4·L instances per query, parameters drawn per Table 3), runs
//!   them on an engine, throttles online streams, and validates
//!   results by PSNR (frame validation) or against scene geometry
//!   (semantic validation);
//! * the **query suite** — microbenchmarks Q1–Q6 and composites
//!   Q7–Q10, specified engine-agnostically in [`vr_vdbms::query`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use visual_road::prelude::*;
//!
//! // 1. Generate a (scaled-down) dataset.
//! let hyper = Hyperparameters::new(
//!     1,                                   // scale factor L
//!     Resolution::new(192, 108),           // camera resolution R
//!     Duration::from_secs(1.0),            // duration t
//!     42,                                  // seed s
//! ).unwrap();
//! let dataset = Vcg::new(GenConfig::default()).generate(&hyper).unwrap();
//!
//! // 2. Drive an engine through a benchmark query.
//! let vcd = Vcd::new(&dataset, VcdConfig::default());
//! let mut engine = ReferenceEngine::new();
//! let report = vcd.run_queries(&mut engine, &[QueryKind::Q1Select]).unwrap();
//! println!("{report}");
//! ```

pub mod captions;
pub mod dataset;
pub mod report;
pub mod semantic;
pub mod server;
pub mod vcd;
pub mod vcg;

pub use dataset::{Dataset, VideoMeta, VideoRole};
pub use semantic::{
    answer_with_index, answer_with_rescan, decide_route, ingest_dataset, recall_at_k,
    truth_top_segments, validate_index, IngestStats, SemanticAnswer, SemanticQuery,
};
pub use report::{
    BenchmarkReport, DegradationStats, ExplainInfo, QueryReport, QueryStatus, SchedulerStats,
    ValidationSummary,
};
pub use vcd::{ExecutionMode, ExplainMode, Vcd, VcdConfig};
pub use vcg::{GenConfig, Vcg};

// Re-export the substrate crates under one roof so downstream users
// depend on `visual-road` alone.
pub use vr_base as base;
pub use vr_codec as codec;
pub use vr_container as container;
pub use vr_frame as frame;
pub use vr_geom as geom;
pub use vr_render as render;
pub use vr_scene as scene;
pub use vr_storage as storage;
pub use vr_vdbms as vdbms;
pub use vr_vision as vision;
pub use vr_vtt as vtt;

/// The benchmark version implemented by this crate.
pub const BENCHMARK_VERSION: &str = "1.0";

/// Common imports for benchmark users.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::report::{BenchmarkReport, ExplainInfo, QueryReport, QueryStatus};
    pub use crate::vcd::{ExecutionMode, ExplainMode, Vcd, VcdConfig};
    pub use crate::vcg::{GenConfig, Vcg};
    pub use vr_base::{Duration, FrameRate, Hyperparameters, Resolution};
    pub use vr_vdbms::{
        BatchEngine, CascadeEngine, FunctionalEngine, QueryKind, ReferenceEngine, Vdbms,
    };
}
