//! A generated benchmark dataset: the city, its videos, and their
//! provenance.

use vr_base::{CameraId, Error, Hyperparameters, Result, TileId};
use vr_scene::VisualCity;
use vr_storage::FlatStore;
use vr_vdbms::query::{FaceParams, SampleContext};
use vr_vdbms::InputVideo;

/// What a dataset video depicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoRole {
    /// A traffic camera stream (the input to Q1–Q8).
    Traffic,
    /// One 120° face of a panoramic rig (the inputs to Q9).
    PanoramicFace {
        /// Rig index within the city.
        rig: usize,
        /// Face index 0–3.
        face: u8,
    },
    /// A pre-stitched equirectangular 360° video (the input to Q10).
    Panorama360 {
        /// Rig index within the city.
        rig: usize,
    },
}

/// Provenance of one dataset video.
#[derive(Debug, Clone, Copy)]
pub struct VideoMeta {
    /// The capturing camera (absent for derived 360° videos).
    pub camera: Option<CameraId>,
    /// Tile the camera sits in.
    pub tile: TileId,
    pub role: VideoRole,
}

/// A complete benchmark dataset.
pub struct Dataset {
    /// The hyperparameters it was generated from.
    pub hyper: Hyperparameters,
    /// The simulated city (retained for ground-truth queries).
    pub city: VisualCity,
    /// The input videos, in deterministic generation order.
    pub videos: Vec<InputVideo>,
    /// Provenance parallel to `videos`.
    pub meta: Vec<VideoMeta>,
    /// The entity-density scale the city was populated with.
    pub density_scale: f64,
}

impl Dataset {
    /// Indices of all traffic-camera videos.
    pub fn traffic_indices(&self) -> Vec<usize> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.role == VideoRole::Traffic)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-rig face video indices, ordered by face.
    pub fn rig_faces(&self) -> Vec<[usize; 4]> {
        let mut rigs: std::collections::BTreeMap<usize, [usize; 4]> = Default::default();
        for (i, m) in self.meta.iter().enumerate() {
            if let VideoRole::PanoramicFace { rig, face } = m.role {
                rigs.entry(rig).or_insert([usize::MAX; 4])[face as usize] = i;
            }
        }
        rigs.values()
            .filter(|faces| faces.iter().all(|&f| f != usize::MAX))
            .copied()
            .collect()
    }

    /// Indices of pre-stitched 360° videos.
    pub fn panorama_indices(&self) -> Vec<usize> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m.role, VideoRole::Panorama360 { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// The sampling context the VCD draws Table 3 parameters from.
    pub fn sample_context(&self, max_upsample_exp: u32) -> SampleContext {
        let mut known_plates = Vec::new();
        for t in 0..self.city.tile_count() {
            for v in &self.city.tile(TileId(t as u32)).vehicles {
                known_plates.push(v.plate);
            }
        }
        let rigs: Vec<[FaceParams; 4]> = self
            .city
            .panoramic_rigs()
            .iter()
            .map(|rig| {
                std::array::from_fn(|i| FaceParams {
                    yaw: rig[i].camera.yaw,
                    pitch: rig[i].camera.pitch,
                    hfov_deg: rig[i].camera.hfov_deg,
                })
            })
            .collect();
        SampleContext { known_plates, rigs, max_upsample_exp }
    }

    /// Total encoded bytes across all videos.
    pub fn total_bytes(&self) -> usize {
        self.videos
            .iter()
            .map(|v| {
                v.container
                    .tracks()
                    .iter()
                    .flat_map(|t| t.samples.iter())
                    .map(|s| s.size as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total video frames across all inputs.
    pub fn total_frames(&self) -> usize {
        self.videos.iter().map(|v| v.frame_count()).sum()
    }

    /// Persist every video as a flat file ("stored as flat files",
    /// §3.1).
    pub fn write_to_store(&self, store: &FlatStore) -> Result<()> {
        for video in &self.videos {
            // The container owns its file bytes; re-serialize by
            // reading them back out via the store path. Containers
            // keep the original buffer, so we round-trip through the
            // samples: simplest is to keep the raw bytes at hand.
            // InputVideo retains no raw buffer accessor, so rebuild:
            let bytes = video.container.raw_bytes();
            store.put(&video.name, bytes)?;
        }
        Ok(())
    }

    /// Stage every video on a distributed file system — the HDFS
    /// staging path of offline mode ("or a distributed file system
    /// (we currently support HDFS)", §3.2).
    pub fn write_to_dfs(&self, dfs: &vr_storage::MiniDfs) -> Result<()> {
        for video in &self.videos {
            dfs.put(&video.name, video.container.raw_bytes())?;
        }
        Ok(())
    }

    /// Reload a dataset's videos from a store (the city and meta must
    /// be regenerated from the hyperparameters, which is cheap).
    pub fn reload_videos(&mut self, store: &FlatStore) -> Result<()> {
        for video in &mut self.videos {
            *video = InputVideo::from_store(store, &video.name)?;
        }
        Ok(())
    }

    /// The video at `index`, with bounds checking.
    pub fn video(&self, index: usize) -> Result<&InputVideo> {
        self.videos
            .get(index)
            .ok_or_else(|| Error::NotFound(format!("dataset video {index}")))
    }
}
