//! The Visual City Generator (§3.1, §5).
//!
//! Accepts the four hyperparameters `{L, R, t, s}`, constructs a
//! Visual City, renders every camera, encodes the frames, and muxes
//! one container per video stream:
//!
//! * **video track** — codec packets (H264-like or HEVC-like profile);
//! * **captions track** — a randomly-generated WebVTT document (Q6b);
//! * **metadata track** — one sample per frame holding the serialized
//!   reference bounding boxes (the precomputed `B` of Q6a).
//!
//! Generation supports single-node and "distributed" modes; in
//! distributed mode tiles are rendered by a pool of worker threads
//! (the EC2-node analogue — per-tile generation is embarrassingly
//! parallel, which is exactly what Figure 9 measures). Output is
//! bit-identical across node counts.

use crate::captions::generate_captions;
use crate::dataset::{Dataset, VideoMeta, VideoRole};
use vr_base::{FrameRate, Hyperparameters, Result, Timestamp, VrRng};
use vr_codec::{Encoder, EncoderConfig, Profile, RateControlMode};
use vr_container::{ContainerWriter, TrackKind};
use vr_frame::Frame;
use vr_render::render_camera_frame;
use vr_scene::{CityCamera, VisualCity};
use vr_vdbms::kernels::{serialize_boxes, stitch_equirect};
use vr_vdbms::query::FaceParams;
use vr_vdbms::{InputVideo, OutputBox};

/// Generator configuration (knobs *around* the benchmark
/// hyperparameters — scaling controls and implementation choices that
/// are reported alongside results).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Entity-density scale (1.0 = the paper's per-tile populations;
    /// in-session runs default lighter).
    pub density_scale: f64,
    /// Worker "nodes" for distributed generation (1 = single node).
    pub nodes: usize,
    /// Codec profile for input videos.
    pub profile: Profile,
    /// Encode QP for input videos.
    pub input_qp: u8,
    /// Camera capture rate.
    pub frame_rate: FrameRate,
    /// Whether to also produce the pre-stitched 360° videos Q10
    /// consumes.
    pub generate_panoramas: bool,
    /// Extra procedurally-generated tile layouts added to the pool
    /// (0 = the paper's 72-tile pool; the future-work extension).
    pub procedural_tile_variants: u8,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            density_scale: 0.15,
            nodes: 1,
            profile: Profile::H264Like,
            input_qp: 20,
            frame_rate: FrameRate::STANDARD,
            generate_panoramas: true,
            procedural_tile_variants: 0,
        }
    }
}

/// The Visual City Generator.
pub struct Vcg {
    cfg: GenConfig,
}

impl Vcg {
    /// Create a generator.
    pub fn new(cfg: GenConfig) -> Self {
        Self { cfg }
    }

    /// Generate a dataset single-threaded, recording each camera
    /// stream's wall-clock generation time. Used by the Figure 9
    /// reproduction to compute per-node-count makespans on machines
    /// without enough cores to run the worker threads truly in
    /// parallel (per-camera generation is fully independent, so the
    /// makespan of a partition is exactly what a node cluster would
    /// take).
    pub fn generate_with_timings(
        &self,
        hyper: &Hyperparameters,
    ) -> Result<(Dataset, Vec<std::time::Duration>)> {
        let single = Vcg::new(GenConfig { nodes: 1, ..self.cfg.clone() });
        let city = VisualCity::generate_extended(
            hyper,
            single.cfg.density_scale,
            single.cfg.procedural_tile_variants,
        );
        let mut videos = Vec::new();
        let mut meta = Vec::new();
        let mut timings = Vec::new();
        for cam in city.cameras() {
            let t0 = std::time::Instant::now();
            let (v, m) = generate_camera_video(&city, cam, hyper, &single.cfg)?;
            timings.push(t0.elapsed());
            videos.push(v);
            meta.push(m);
        }
        if single.cfg.generate_panoramas {
            for (rig, faces) in collect_rig_faces(&meta) {
                let (video, m) =
                    generate_panorama(&videos, &meta, rig, faces, &city, single.cfg.input_qp)?;
                videos.push(video);
                meta.push(m);
            }
        }
        Ok((
            Dataset {
                hyper: *hyper,
                city,
                videos,
                meta,
                density_scale: single.cfg.density_scale,
            },
            timings,
        ))
    }

    /// Generate a complete dataset.
    pub fn generate(&self, hyper: &Hyperparameters) -> Result<Dataset> {
        let city = VisualCity::generate_extended(
            hyper,
            self.cfg.density_scale,
            self.cfg.procedural_tile_variants,
        );
        let cameras: Vec<CityCamera> = city.cameras().to_vec();
        let nodes = self.cfg.nodes.max(1).min(cameras.len().max(1));

        // Per-camera video generation is independent; shard cameras
        // over "nodes". Results are written into a preallocated slot
        // vector so the output order (and content) is identical for
        // any node count.
        let mut slots: Vec<Option<(InputVideo, VideoMeta)>> = Vec::new();
        slots.resize_with(cameras.len(), || None);
        let slot_chunks = shard_slots(&mut slots, &cameras, nodes);
        std::thread::scope(|s| -> Result<()> {
            let mut handles = Vec::new();
            for (cam_shard, slot_shard) in slot_chunks {
                let city = &city;
                let cfg = &self.cfg;
                handles.push(s.spawn(move || -> Result<()> {
                    for (cam, slot) in cam_shard.iter().zip(slot_shard) {
                        *slot = Some(generate_camera_video(city, cam, hyper, cfg)?);
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("generator worker panicked")?;
            }
            Ok(())
        })?;
        let mut videos = Vec::with_capacity(slots.len());
        let mut meta = Vec::with_capacity(slots.len());
        for slot in slots {
            let (v, m) = slot.expect("every camera slot filled");
            videos.push(v);
            meta.push(m);
        }

        // Derived 360° panoramas (stitched from the face videos with
        // the reference stitcher).
        if self.cfg.generate_panoramas {
            let rig_faces = collect_rig_faces(&meta);
            for (rig, face_indices) in rig_faces {
                let (video, m) =
                    generate_panorama(&videos, &meta, rig, face_indices, &city, self.cfg.input_qp)?;
                videos.push(video);
                meta.push(m);
            }
        }

        Ok(Dataset {
            hyper: *hyper,
            city,
            videos,
            meta,
            density_scale: self.cfg.density_scale,
        })
    }
}

/// Split the slot vector into per-node shards (round-robin by
/// contiguous chunks).
#[allow(clippy::type_complexity)]
fn shard_slots<'a>(
    slots: &'a mut [Option<(InputVideo, VideoMeta)>],
    cameras: &'a [CityCamera],
    nodes: usize,
) -> Vec<(&'a [CityCamera], &'a mut [Option<(InputVideo, VideoMeta)>])> {
    let chunk = cameras.len().div_ceil(nodes).max(1);
    cameras.chunks(chunk).zip(slots.chunks_mut(chunk)).collect()
}

/// Render, encode, and mux one camera's stream.
fn generate_camera_video(
    city: &VisualCity,
    cam: &CityCamera,
    hyper: &Hyperparameters,
    cfg: &GenConfig,
) -> Result<(InputVideo, VideoMeta)> {
    let (w, h) = (hyper.resolution.width, hyper.resolution.height);
    let frames = hyper.duration.frames(cfg.frame_rate).max(1);
    let enc_cfg = EncoderConfig {
        profile: cfg.profile,
        rate: RateControlMode::ConstantQp(cfg.input_qp),
        gop: cfg.frame_rate.0,
        frame_rate: cfg.frame_rate,
    };
    let mut encoder = Encoder::new(enc_cfg, w, h)?;
    let mut writer = ContainerWriter::new();
    let video_track = writer.add_track(TrackKind::Video, encoder.info().serialize());

    // Captions (traffic cameras only — panoramic faces feed Q9).
    let caption_track = if cam.kind == vr_base::CameraKind::Traffic {
        Some(writer.add_track(TrackKind::Captions, Vec::new()))
    } else {
        None
    };
    let boxes_track = if cam.kind == vr_base::CameraKind::Traffic {
        Some(writer.add_track(TrackKind::Metadata, Vec::new()))
    } else {
        None
    };

    for i in 0..frames {
        let t = i as f64 * cfg.frame_rate.frame_interval_secs();
        let frame = render_camera_frame(city, cam, t, w, h);
        let packet = encoder.encode(&frame)?;
        let ts = Timestamp::of_frame(i, cfg.frame_rate);
        writer.push_sample(video_track, &packet.data, ts, packet.keyframe);
        if let Some(bt) = boxes_track {
            let truth = vr_scene::groundtruth::frame_truth(city, cam, t, w, h);
            let boxes: Vec<OutputBox> = truth
                .objects
                .iter()
                .filter(|o| !o.occluded)
                .map(|o| OutputBox { class: o.class, rect: o.rect })
                .collect();
            writer.push_sample(bt, &serialize_boxes(&boxes), ts, true);
        }
    }
    if let Some(ct) = caption_track {
        let mut rng = VrRng::seed_from(vr_base::rng::mix64(hyper.seed, 0xCA90 ^ cam.id.0 as u64));
        let doc = generate_captions(&mut rng, hyper.duration);
        writer.push_sample(ct, doc.serialize().as_bytes(), Timestamp::ZERO, true);
    }

    let name = format!("{}-{}.vrmf", cam.id, role_tag(cam));
    let input = InputVideo::from_bytes(name, writer.finish())?;
    let role = match cam.kind {
        vr_base::CameraKind::Traffic => VideoRole::Traffic,
        vr_base::CameraKind::PanoramicFace(face) => VideoRole::PanoramicFace {
            rig: rig_index_of(city, cam),
            face,
        },
    };
    Ok((input, VideoMeta { camera: Some(cam.id), tile: cam.tile, role }))
}

fn role_tag(cam: &CityCamera) -> String {
    match cam.kind {
        vr_base::CameraKind::Traffic => "traffic".to_string(),
        vr_base::CameraKind::PanoramicFace(f) => format!("pano-f{f}"),
    }
}

/// Which rig (by city order) a panoramic face camera belongs to.
fn rig_index_of(city: &VisualCity, cam: &CityCamera) -> usize {
    city.panoramic_rigs()
        .iter()
        .position(|rig| rig.iter().any(|f| f.id == cam.id))
        .expect("face camera belongs to a rig")
}

fn collect_rig_faces(meta: &[VideoMeta]) -> Vec<(usize, [usize; 4])> {
    let mut rigs: std::collections::BTreeMap<usize, [usize; 4]> = Default::default();
    for (i, m) in meta.iter().enumerate() {
        if let VideoRole::PanoramicFace { rig, face } = m.role {
            rigs.entry(rig).or_insert([usize::MAX; 4])[face as usize] = i;
        }
    }
    rigs.into_iter().filter(|(_, f)| f.iter().all(|&i| i != usize::MAX)).collect()
}

/// Build the pre-stitched 360° video for one rig.
fn generate_panorama(
    videos: &[InputVideo],
    meta: &[VideoMeta],
    rig: usize,
    faces: [usize; 4],
    city: &VisualCity,
    qp: u8,
) -> Result<(InputVideo, VideoMeta)> {
    let rigs = city.panoramic_rigs();
    let rig_cams = rigs[rig];
    let params: [FaceParams; 4] = std::array::from_fn(|i| FaceParams {
        yaw: rig_cams[i].camera.yaw,
        pitch: rig_cams[i].camera.pitch,
        hfov_deg: rig_cams[i].camera.hfov_deg,
    });
    let mut decoded: Vec<Vec<Frame>> = Vec::with_capacity(4);
    let mut info = None;
    for &fi in &faces {
        let (vi, frames) = vr_vdbms::kernels::decode_all(&videos[fi])?;
        info.get_or_insert(vi);
        decoded.push(frames);
    }
    let info = info.expect("four faces decoded");
    let n = decoded.iter().map(|d| d.len()).min().unwrap_or(0);
    let out_w = (info.width * 2).max(4) & !1;
    let out_h = info.width.max(4) & !1;

    let enc_cfg = EncoderConfig {
        profile: info.profile,
        rate: RateControlMode::ConstantQp(qp),
        gop: info.gop,
        frame_rate: info.frame_rate,
    };
    let mut encoder = Encoder::new(enc_cfg, out_w, out_h)?;
    let mut writer = ContainerWriter::new();
    let track = writer.add_track(TrackKind::Video, encoder.info().serialize());
    for t in 0..n {
        let face_frames: [Frame; 4] = std::array::from_fn(|i| decoded[i][t].clone());
        let stitched = stitch_equirect(&face_frames, &params, out_w, out_h);
        let packet = encoder.encode(&stitched)?;
        writer.push_sample(
            track,
            &packet.data,
            Timestamp::of_frame(t as u64, info.frame_rate),
            packet.keyframe,
        );
    }
    let tile = meta[faces[0]].tile;
    let input = InputVideo::from_bytes(format!("pano360-rig{rig}.vrmf"), writer.finish())?;
    Ok((input, VideoMeta { camera: None, tile, role: VideoRole::Panorama360 { rig } }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_base::{Duration, Resolution};

    fn hyper(l: u32, seed: u64) -> Hyperparameters {
        Hyperparameters::new(l, Resolution::new(96, 56), Duration::from_secs(0.3), seed)
            .unwrap()
    }

    fn fast_cfg() -> GenConfig {
        GenConfig { density_scale: 0.05, ..Default::default() }
    }

    #[test]
    fn generates_expected_video_inventory() {
        let ds = Vcg::new(fast_cfg()).generate(&hyper(2, 7)).unwrap();
        // Per tile: 4 traffic + 4 faces; plus 1 panorama per rig.
        assert_eq!(ds.traffic_indices().len(), 8);
        assert_eq!(ds.rig_faces().len(), 2);
        assert_eq!(ds.panorama_indices().len(), 2);
        assert_eq!(ds.videos.len(), 2 * 8 + 2);
        // Every video decodes and has the right frame count (0.3 s at
        // 30 fps = 9 frames).
        for idx in ds.traffic_indices() {
            assert_eq!(ds.videos[idx].frame_count(), 9);
            vr_vdbms::kernels::decode_all(&ds.videos[idx]).unwrap();
        }
        assert!(ds.total_frames() > 0);
        assert!(ds.total_bytes() > 0);
    }

    #[test]
    fn traffic_videos_carry_aux_tracks() {
        let ds = Vcg::new(fast_cfg()).generate(&hyper(1, 8)).unwrap();
        for idx in ds.traffic_indices() {
            let v = &ds.videos[idx];
            assert!(v.container.track_of_kind(TrackKind::Captions).is_some());
            assert!(v.container.track_of_kind(TrackKind::Metadata).is_some());
            // Caption track parses as WebVTT.
            vr_vdbms::kernels::caption_track(v).unwrap();
            // Box track parses for frame 0.
            vr_vdbms::kernels::box_track(v, 0).unwrap();
        }
        // Panoramic faces don't.
        for faces in ds.rig_faces() {
            for fi in faces {
                assert!(ds.videos[fi]
                    .container
                    .track_of_kind(TrackKind::Captions)
                    .is_none());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_across_node_counts() {
        let single = Vcg::new(GenConfig { nodes: 1, ..fast_cfg() })
            .generate(&hyper(2, 9))
            .unwrap();
        let multi = Vcg::new(GenConfig { nodes: 4, ..fast_cfg() })
            .generate(&hyper(2, 9))
            .unwrap();
        assert_eq!(single.videos.len(), multi.videos.len());
        for (a, b) in single.videos.iter().zip(&multi.videos) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.container.raw_bytes(),
                b.container.raw_bytes(),
                "distributed output must be bit-identical ({})",
                a.name
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Vcg::new(fast_cfg()).generate(&hyper(1, 1)).unwrap();
        let b = Vcg::new(fast_cfg()).generate(&hyper(1, 2)).unwrap();
        assert_ne!(
            a.videos[0].container.raw_bytes(),
            b.videos[0].container.raw_bytes()
        );
    }

    #[test]
    fn sample_context_reflects_city() {
        let ds = Vcg::new(fast_cfg()).generate(&hyper(2, 10)).unwrap();
        let ctx = ds.sample_context(2);
        assert!(!ctx.known_plates.is_empty());
        assert_eq!(ctx.rigs.len(), 2);
        assert_eq!(ctx.max_upsample_exp, 2);
    }

    #[test]
    fn store_round_trip() {
        let ds = Vcg::new(GenConfig { generate_panoramas: false, ..fast_cfg() })
            .generate(&hyper(1, 11))
            .unwrap();
        let store = vr_storage::FlatStore::temp("vcg-store").unwrap();
        ds.write_to_store(&store).unwrap();
        assert_eq!(store.list().unwrap().len(), ds.videos.len());
        let mut ds2 = Vcg::new(GenConfig { generate_panoramas: false, ..fast_cfg() })
            .generate(&hyper(1, 11))
            .unwrap();
        ds2.reload_videos(&store).unwrap();
        assert_eq!(
            ds.videos[0].container.raw_bytes(),
            ds2.videos[0].container.raw_bytes()
        );
        store.destroy().unwrap();
    }
}
