//! The Visual City Driver (§3.2).
//!
//! Responsible for "reading the input videos, exposing encoded video
//! data to a VDBMS, submitting queries to the VDBMS being measured,
//! and evaluating the correctness of a VDBMS's query results":
//!
//! * builds a **query batch** of 4·L instances per query, drawing
//!   free parameters uniformly from the Table 3 domains;
//! * in **online mode**, streams each input through an RTP
//!   packetizer throttled to the camera's capture rate before the
//!   engine may consume it;
//! * in **write mode**, engines persist results (persistence time is
//!   measured); **streaming mode** discards them;
//! * validates results by **frame validation** (per-frame PSNR ≥ 40 dB
//!   against the reference implementation) or **semantic validation**
//!   (Q2(c): boxes against the reference boxes at the PASCAL VOC
//!   ε = 0.5 threshold, with ground-truth recall reported
//!   informationally).

use crate::dataset::Dataset;
use crate::report::{
    BenchmarkReport, DegradationStats, ExplainInfo, ObsStats, QueryReport, QueryStatus,
    SchedulerStats, StageLatency, ValidationSummary,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vr_base::obs::{metrics, serve, trace};
use vr_base::rng::mix64;
use vr_base::sync::CancelToken;
use vr_base::{fault, Error, Resolution, Result, VrRng};
use vr_container::TrackKind;
use vr_frame::metrics::{psnr_y, PsnrStats, VALIDATION_THRESHOLD_DB};
use vr_scene::groundtruth::frame_truth;
use vr_storage::rtp::{RtpDepacketizer, RtpPacketizer};
use vr_storage::{FlatStore, Pacer};
use vr_vdbms::query::{QueryInstance, QuerySpec};
use vr_vdbms::reference::execute_reference;
use vr_vdbms::{
    CalibrationProfile, ExecContext, InputVideo, Optimizer, OptimizerMode, PipelineMetrics,
    QueryKind, QueryOutput, ResultMode, Vdbms, Workload,
};

/// Offline (random file access) vs online (rate-throttled forward-only
/// streams) execution (§3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    Offline,
    /// Online with a time-compression factor: `speedup` = 1.0 streams
    /// at faithful real time; larger values compress the wait
    /// proportionally (reported with results).
    Online { speedup: f64 },
}

/// How much plan-tree detail the driver attaches to each query row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// No plan trees.
    #[default]
    Off,
    /// Attach the pre-execution plan shape (EXPLAIN).
    Plan,
    /// Attach the plan annotated with wall/self time, frame/byte flow,
    /// and allocator scopes after the batch runs (EXPLAIN ANALYZE).
    Analyze,
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct VcdConfig {
    pub mode: ExecutionMode,
    /// `Some(store)` = write mode; `None` = streaming mode.
    pub write_store: Option<FlatStore>,
    /// Whether to validate results against the reference
    /// implementation (validation runs outside the measured window).
    pub validate: bool,
    /// Override the 4·L batch size (for scaled-down runs; reported).
    pub batch_size: Option<usize>,
    /// QP engines encode results at.
    pub output_qp: u8,
    /// Q4 α/β exponent cap (paper domain: 5).
    pub max_upsample_exp: u32,
    /// Minimum fraction of engine boxes that must match the reference
    /// boxes within ε = 0.5 for semantic validation to pass. 0.7
    /// leaves headroom for cascade-style engines that reuse previous
    /// detections on static frames (an accuracy trade the paper's
    /// NoScope makes too).
    pub semantic_threshold: f64,
    /// Whether to quiesce the engine between query batches ("a VDBMS
    /// … may optionally quiesce or restart upon completing a batch",
    /// §3.2). Quiescing releases pooled resources (the functional
    /// engine's device memory) but also drops caches (the batch
    /// engine's frame table) — the scale-factor experiments run
    /// without it to expose cross-batch caching behaviour.
    pub quiesce_between_batches: bool,
    /// Worker budget handed to each engine's pipelined executor via
    /// [`ExecContext::workers`]. `None` defers to `VR_WORKERS` / the
    /// machine's parallelism; `Some(1)` forces every engine down its
    /// sequential path.
    pub pipeline_workers: Option<usize>,
    /// Worker threads the driver dispatches one batch's instances
    /// across. `None` defers to `VR_WORKERS` / the machine's
    /// parallelism; `Some(1)` is the classic sequential driver loop
    /// (which also aborts the batch at the first failing instance).
    pub batch_workers: Option<usize>,
    /// Per-instance latency deadline. Instances that exceed it are
    /// counted in [`SchedulerStats::deadline_misses`] AND enforced:
    /// the scheduler arms each instance's [`CancelToken`] with this
    /// deadline, the pipeline unwinds with
    /// [`Error::Cancelled`](vr_base::Error::Cancelled) at the next
    /// frame boundary, and the instance is folded into the report as a
    /// degraded row ([`DegradationStats::cancelled_instances`])
    /// instead of blocking or failing the batch.
    pub instance_deadline: Option<Duration>,
    /// Plan-tree reporting: off, EXPLAIN (shape only), or EXPLAIN
    /// ANALYZE (annotated post-execution). The in-flight plan is also
    /// published to the live endpoint's `/explain` route.
    pub explain: ExplainMode,
    /// Cost-based optimizer switch: `Off` keeps every engine's
    /// hand-tuned plan choices; `On`/`Explain` install an
    /// [`Optimizer`] in each query's [`ExecContext`] so engines pick
    /// the cheapest candidate plan.
    pub optimizer: OptimizerMode,
    /// Calibration profile the optimizer scores with; `None` seeds
    /// from [`CalibrationProfile::builtin`].
    pub profile: Option<CalibrationProfile>,
}

impl Default for VcdConfig {
    fn default() -> Self {
        Self {
            mode: ExecutionMode::Offline,
            write_store: None,
            validate: true,
            batch_size: None,
            output_qp: 10,
            max_upsample_exp: 2,
            semantic_threshold: 0.7,
            quiesce_between_batches: true,
            pipeline_workers: None,
            batch_workers: None,
            instance_deadline: None,
            explain: ExplainMode::Off,
            optimizer: OptimizerMode::Off,
            profile: None,
        }
    }
}

/// The driver, bound to a dataset.
pub struct Vcd<'d> {
    dataset: &'d Dataset,
    cfg: VcdConfig,
    /// Shared cost-based optimizer (present when the config enables
    /// it); one instance per driver so plan decisions and measured
    /// feedback accumulate across that driver's batches.
    optimizer: Option<Arc<Optimizer>>,
}

impl<'d> Vcd<'d> {
    /// Bind a driver to a dataset.
    pub fn new(dataset: &'d Dataset, cfg: VcdConfig) -> Self {
        let optimizer = cfg.optimizer.enabled().then(|| {
            let profile = cfg.profile.clone().unwrap_or_else(CalibrationProfile::builtin);
            let res = dataset.hyper.resolution;
            let frames = dataset.hyper.duration.frames(vr_base::FrameRate::STANDARD).max(1);
            Arc::new(Optimizer::new(profile).with_workload(Workload {
                width: res.width,
                height: res.height,
                frames,
            }))
        });
        Self { dataset, cfg, optimizer }
    }

    /// The driver's optimizer, when the config enabled one — the CLI
    /// reads decision tables off it after a run.
    pub fn optimizer(&self) -> Option<&Arc<Optimizer>> {
        self.optimizer.as_ref()
    }

    /// Build the query batch for one query kind: `4L` instances (or
    /// the configured override), parameters drawn uniformly, inputs
    /// chosen per query semantics.
    pub fn batch(&self, kind: QueryKind) -> Result<Vec<QueryInstance>> {
        let size = self.cfg.batch_size.unwrap_or(self.dataset.hyper.batch_size());
        let mut rng = VrRng::seed_from(mix64(self.dataset.hyper.seed, kind as u64 + 0xBA7C));
        let ctx = self.dataset.sample_context(self.cfg.max_upsample_exp);
        let traffic = self.dataset.traffic_indices();
        let rigs = self.dataset.rig_faces();
        let panoramas = self.dataset.panorama_indices();
        let res = self.dataset.hyper.resolution;
        let dur = self.dataset.hyper.duration;

        let mut instances = Vec::with_capacity(size);
        for index in 0..size {
            let (spec, inputs) = match kind {
                QueryKind::Q9PanoramicStitching => {
                    if rigs.is_empty() {
                        return Err(vr_base::Error::InvalidConfig(
                            "dataset has no complete panoramic rigs".into(),
                        ));
                    }
                    let r = rng.range(0, rigs.len() - 1);
                    let spec = QuerySpec::Q9 {
                        faces: ctx.rigs[r],
                        output: Resolution::new(res.width * 2, res.width),
                    };
                    (spec, rigs[r].to_vec())
                }
                QueryKind::Q10TileEncoding => {
                    if panoramas.is_empty() {
                        return Err(vr_base::Error::InvalidConfig(
                            "dataset was generated without 360° panoramas".into(),
                        ));
                    }
                    let p = *rng.choose(&panoramas);
                    let pano_res = {
                        let info = self.dataset.videos[p].video_info()?;
                        Resolution::new(info.width, info.height)
                    };
                    let spec = QuerySpec::sample(kind, &mut rng, pano_res, dur, &ctx);
                    (spec, vec![p])
                }
                QueryKind::Q8VehicleTracking => {
                    let spec = QuerySpec::sample(kind, &mut rng, res, dur, &ctx);
                    (spec, traffic.clone())
                }
                _ => {
                    let spec = QuerySpec::sample(kind, &mut rng, res, dur, &ctx);
                    let input = *rng.choose(&traffic);
                    (spec, vec![input])
                }
            };
            instances.push(QueryInstance { index, spec, inputs });
        }
        Ok(instances)
    }

    /// Run a set of queries on an engine and report.
    pub fn run_queries(
        &self,
        engine: &mut dyn Vdbms,
        kinds: &[QueryKind],
    ) -> Result<BenchmarkReport> {
        let mut queries = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            queries.push(self.run_one(engine, kind)?);
            if self.cfg.quiesce_between_batches {
                engine.quiesce();
            }
        }
        Ok(BenchmarkReport {
            engine: engine.name().to_string(),
            scale: self.dataset.hyper.scale,
            resolution: self.dataset.hyper.resolution.to_string(),
            duration_secs: self.dataset.hyper.duration.as_secs_f64(),
            mode: format!(
                "{}/{}",
                match self.cfg.mode {
                    ExecutionMode::Offline => "offline".to_string(),
                    ExecutionMode::Online { speedup } => format!("online(x{speedup})"),
                },
                if self.cfg.write_store.is_some() { "write" } else { "streaming" }
            ),
            queries,
        })
    }

    /// Run every benchmark query in submission order.
    pub fn run_full_benchmark(&self, engine: &mut dyn Vdbms) -> Result<BenchmarkReport> {
        self.run_queries(engine, &QueryKind::ALL)
    }

    /// EXPLAIN without execution: the plan tree the engine would run
    /// for each query's batch, rendered as text. Unsupported queries
    /// report as such instead of erroring, mirroring the N/A report
    /// rows.
    pub fn explain(
        &self,
        engine: &dyn Vdbms,
        kinds: &[QueryKind],
    ) -> Result<Vec<(QueryKind, String)>> {
        let mut out = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            if !engine.supports(kind) {
                out.push((kind, "unsupported\n".to_string()));
                continue;
            }
            let batch = self.batch(kind)?;
            let ctx = self.exec_context(kind);
            let mut text = engine.plan(&batch[0], &ctx).render_text();
            // Planning above consulted (and cached) the optimizer's
            // decision; surface the chosen-vs-rejected table with it.
            if let Some(decision) = self
                .optimizer
                .as_ref()
                .and_then(|opt| opt.decision(&engine.plan_key(&batch[0])))
            {
                text.push_str(&decision.render_text());
            }
            out.push((kind, text));
        }
        Ok(out)
    }

    fn exec_context(&self, kind: QueryKind) -> ExecContext {
        ExecContext {
            result_mode: match &self.cfg.write_store {
                Some(store) => ResultMode::Write {
                    store: store.clone(),
                    prefix: kind.label().replace(['(', ')'], ""),
                },
                None => ResultMode::Streaming,
            },
            output_qp: self.cfg.output_qp,
            metrics: Arc::new(PipelineMetrics::default()),
            workers: self
                .cfg
                .pipeline_workers
                .unwrap_or_else(vr_base::sync::worker_budget)
                .max(1),
            query_label: kind.label().replace(['(', ')'], ""),
            cancel: CancelToken::new(),
            stage_timeout: Some(vr_vdbms::io::DEFAULT_STAGE_TIMEOUT),
            optimizer: self.optimizer.clone(),
            tenant: None,
            request_id: None,
        }
    }

    /// Per-instance context: same shared metrics/result mode, but a
    /// fresh cancellation token armed with the configured deadline so
    /// one straggler's cancellation never leaks into its neighbours.
    /// The instance's identity rides along as the request id, so the
    /// pipeline's request-lane spans attribute batch work per instance
    /// exactly like the server attributes it per request.
    fn instance_context(&self, ctx: &ExecContext, index: usize) -> ExecContext {
        let mut ictx = ctx.clone();
        ictx.cancel = match self.cfg.instance_deadline {
            Some(d) => CancelToken::with_deadline(Instant::now() + d),
            None => CancelToken::new(),
        };
        ictx.request_id =
            Some(std::sync::Arc::from(format!("instance.{}.{index}", ctx.query_label).as_str()));
        ictx
    }

    /// Whether the driver folds failing/cancelled instances into the
    /// report as degraded rows instead of failing the whole batch:
    /// on when a fault plan is active (chaos runs must always
    /// terminate with an accurate report) or when a deadline is being
    /// enforced. Off by default, preserving the classic semantics
    /// where the first failing instance decides the batch.
    fn degrade_mode(&self) -> bool {
        fault::active() || self.cfg.instance_deadline.is_some()
    }

    /// Execute one query's batch on the engine; measure and validate.
    fn run_one(&self, engine: &mut dyn Vdbms, kind: QueryKind) -> Result<QueryReport> {
        let batch = self.batch(kind)?;
        let batch_size = batch.len();
        if !engine.supports(kind) {
            return Ok(QueryReport { kind, batch_size, status: QueryStatus::Unsupported });
        }
        let ctx = self.exec_context(kind);
        let inputs = &self.dataset.videos;
        let degrade = self.degrade_mode();
        // Plan description for the batch: built (and published to the
        // live endpoint's /explain route) before the measured window
        // opens, so describing the plan never perturbs the
        // measurement. Instances of one batch share a plan shape — the
        // first instance stands for all of them. With the optimizer
        // enabled the plan is always built here even without EXPLAIN:
        // planning is what caches the cost-based decision that both
        // the scheduler below and the engine's `execute` consult.
        let mut plan = (self.cfg.explain != ExplainMode::Off || self.optimizer.is_some())
            .then(|| {
                let plan = engine.plan(&batch[0], &ctx);
                if self.cfg.explain != ExplainMode::Off {
                    serve::set_explain(plan.render_text());
                }
                plan
            });
        let plan_key = engine.plan_key(&batch[0]);
        let budget = self
            .cfg
            .batch_workers
            .unwrap_or_else(vr_base::sync::worker_budget)
            .clamp(1, batch.len().max(1));
        // Scheduler fan-out: with the optimizer on, the batch-level
        // worker count comes from the cost model's break-even check
        // (an instance estimated cheaper than a few thread spawns — or
        // a single-core host — gains nothing from fanning out);
        // otherwise the hand-tuned budget stands.
        let workers = match &self.optimizer {
            Some(opt) => {
                let est = opt
                    .decision(&plan_key)
                    .map(|d| d.chosen.est_nanos)
                    .unwrap_or(u64::MAX);
                opt.batch_fanout(budget, batch.len(), est)
            }
            None => budget,
        };
        let batch_span = trace::span_dyn("vcd", || format!("batch.{}", kind.label()));
        let deg_before = fault::degradation_snapshot();
        // Registry state at the measured window's start; the
        // after-snapshot is taken before validation so the reference
        // pipelines the oracle runs never pollute this batch's deltas.
        let obs_before = metrics::snapshot();
        let start = Instant::now();
        engine.prepare_batch(&batch, inputs, &ctx);
        // `prepare_batch` needed the exclusive reference; dispatch
        // shares the engine across scheduler workers.
        let engine: &dyn Vdbms = engine;
        let slots = if workers <= 1 {
            self.dispatch_sequential(engine, &batch, &ctx)?
        } else {
            self.dispatch_concurrent(engine, &batch, &ctx, workers)?
        };
        let runtime = start.elapsed();
        let obs_delta = metrics::snapshot().since(&obs_before);
        let recovered = fault::degradation_snapshot().since(&deg_before);
        drop(batch_span);

        // Fold the per-instance slots in submission order. Classic
        // semantics: the first (lowest-index) failure decides the
        // batch's status, exactly as under the sequential driver.
        // Degrade mode (faults active or a deadline enforced):
        // cancelled/failed instances become degraded rows and the
        // batch always completes with the surviving outputs.
        let mut completed: Vec<(&QueryInstance, QueryOutput)> = Vec::with_capacity(batch.len());
        let mut frames = 0usize;
        let mut bytes_written = 0usize;
        let mut latencies: Vec<u64> = Vec::with_capacity(batch.len());
        let mut cancelled_instances = 0u64;
        let mut failed_instances = 0u64;
        let mut failure: Option<String> = None;
        for (slot, instance) in slots.into_iter().zip(&batch) {
            let Some((result, nanos)) = slot else { break };
            latencies.push(nanos);
            match result {
                Ok(out) => {
                    for &i in &instance.inputs {
                        frames += self.dataset.videos[i].frame_count();
                    }
                    bytes_written += match &ctx.result_mode {
                        ResultMode::Write { .. } => out.size_bytes(),
                        ResultMode::Streaming => 0,
                    };
                    completed.push((instance, out));
                }
                Err(Error::Cancelled(_)) if degrade => cancelled_instances += 1,
                Err(_) if degrade => failed_instances += 1,
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        if let Some(error) = failure {
            return Ok(QueryReport { kind, batch_size, status: QueryStatus::Failed { error } });
        }
        let fps = frames as f64 / runtime.as_secs_f64().max(1e-9);
        // Per-operator stage aggregates accumulated by the engine's
        // pipeline over the whole measured batch.
        let stages = ctx.metrics.snapshot();
        // Feedback path: fold the batch's mean measured per-instance
        // latency into the optimizer's profile (EWMA) so later batches
        // — and the persisted profile — score with observed costs.
        if let Some(opt) = &self.optimizer {
            if !latencies.is_empty() {
                opt.feedback(&plan_key, latencies.iter().sum::<u64>() / latencies.len() as u64);
            }
        }
        let explain = plan
            .take()
            .filter(|_| self.cfg.explain != ExplainMode::Off)
            .map(|mut plan| {
                let verify_error = if self.cfg.explain == ExplainMode::Analyze {
                    plan.annotate(&stages, runtime.as_nanos() as u64);
                    // Measured stage work may legitimately exceed wall
                    // time when pipeline stages and scheduler workers
                    // overlap; the invariant bound scales with the total
                    // fan-out.
                    plan.verify(runtime.as_nanos() as u64, ctx.workers.max(1) * workers).err()
                } else {
                    None
                };
                let mut text = plan.render_text();
                if let Some(opt) = &self.optimizer {
                    // EXPLAIN grows the chosen-vs-rejected table; under
                    // ANALYZE the estimate is also confronted with the
                    // measured per-instance latency recorded above.
                    if let Some(decision) = opt.decision(&plan_key) {
                        text.push_str(&decision.render_text());
                    }
                    if self.cfg.explain == ExplainMode::Analyze {
                        if let Some((est, measured)) = opt.observed(&plan_key) {
                            let err = (est as f64 - measured as f64).abs()
                                / (measured as f64).max(1.0)
                                * 100.0;
                            text.push_str(&format!(
                                "optimizer: est {} vs measured {} per instance (error {err:.1}%)\n",
                                vr_vdbms::cost::fmt_cost(est),
                                vr_vdbms::cost::fmt_cost(measured),
                            ));
                        }
                    }
                }
                serve::set_explain(text.clone());
                ExplainInfo { text, json: plan.render_json(), verify_error }
            });
        let scheduler =
            SchedulerStats::from_durations(workers, &latencies, self.cfg.instance_deadline);

        // Worker-pool busy fraction over the measured window, also
        // published as a gauge for the metrics exporters.
        let busy_nanos: u64 = latencies.iter().sum();
        let worker_utilization = (busy_nanos as f64
            / (workers as f64 * runtime.as_nanos().max(1) as f64))
            .min(1.0);
        metrics::gauge("scheduler.worker_utilization").set(worker_utilization);
        metrics::gauge("scheduler.workers").set(workers as f64);
        let obs = ObsStats {
            stage_latency: vr_vdbms::StageKind::ALL
                .iter()
                .filter_map(|kind| {
                    let stage = kind.label();
                    let h = obs_delta.histograms.get(&format!("stage.{stage}.nanos"))?;
                    (h.count > 0).then(|| StageLatency {
                        stage,
                        count: h.count,
                        p50_nanos: h.p50(),
                        p95_nanos: h.p95(),
                        p99_nanos: h.p99(),
                    })
                })
                .collect(),
            worker_utilization,
        };

        let validation = if self.cfg.validate {
            // Validation (reference runs + PSNR) happens outside the
            // measured window AND outside the fault plan: injecting
            // faults into the correctness oracle would make every
            // verdict meaningless.
            let _span = trace::span("vcd", "validate");
            fault::suppress(|| self.validate_batch(&completed))?
        } else {
            ValidationSummary { passed: true, ..Default::default() }
        };

        let faults_active = fault::active();
        let degradation = DegradationStats {
            concealed_frames: recovered.concealed_frames,
            skipped_samples: recovered.skipped_samples,
            skipped_packets: recovered.skipped_packets,
            io_retries: recovered.io_retries,
            io_give_ups: recovered.io_give_ups,
            stage_panics: recovered.stage_panics,
            stalls_absorbed: recovered.stalls_absorbed,
            cancelled_instances,
            failed_instances,
            achieved_psnr_db: if faults_active {
                validation.psnr.map(|p| p.mean)
            } else {
                None
            },
            faults_active,
        };

        Ok(QueryReport {
            kind,
            batch_size,
            status: QueryStatus::Completed {
                runtime,
                frames,
                fps,
                bytes_written,
                stages,
                scheduler,
                validation,
                degradation,
                obs,
                explain,
            },
        })
    }

    /// Online mode: the engine may not read faster than the capture
    /// rate; stream the instance's inputs through paced RTP first.
    fn ingest_instance(&self, instance: &QueryInstance) -> Result<()> {
        if let ExecutionMode::Online { speedup } = self.cfg.mode {
            for &i in &instance.inputs {
                ingest_online(&self.dataset.videos[i], speedup)?;
            }
        }
        Ok(())
    }

    /// The classic driver loop: one instance at a time, stopping at
    /// the first failure (trailing slots stay `None`). Each slot holds
    /// the instance's result plus its latency in nanoseconds.
    #[allow(clippy::type_complexity)]
    fn dispatch_sequential(
        &self,
        engine: &dyn Vdbms,
        batch: &[QueryInstance],
        ctx: &ExecContext,
    ) -> Result<Vec<Option<(Result<QueryOutput>, u64)>>> {
        let degrade = self.degrade_mode();
        let mut slots: Vec<Option<(Result<QueryOutput>, u64)>> =
            (0..batch.len()).map(|_| None).collect();
        for (i, instance) in batch.iter().enumerate() {
            let _span = trace::span_dyn("scheduler", || format!("instance.{}.{i}", ctx.query_label));
            let t0 = Instant::now();
            if let Err(e) = self.ingest_instance(instance) {
                // Under degrade mode an ingest failure (e.g. an
                // exhausted retry budget) costs that instance only.
                if degrade {
                    slots[i] = Some((Err(e), t0.elapsed().as_nanos() as u64));
                    continue;
                }
                return Err(e);
            }
            let ictx = self.instance_context(ctx, i);
            let result = engine.execute(instance, &self.dataset.videos, &ictx);
            let failed = result.is_err();
            slots[i] = Some((result, t0.elapsed().as_nanos() as u64));
            if failed && !degrade {
                break;
            }
        }
        Ok(slots)
    }

    /// Dispatch one batch's instances across `workers` scoped threads.
    /// Workers pull the next instance index from a shared atomic
    /// counter, so an expensive instance never stalls the rest of the
    /// batch behind it; results land in per-index slots to keep the
    /// fold deterministic regardless of completion order. Online-mode
    /// ingest happens inside the worker job, pacing each stream
    /// concurrently the way a rack of live cameras would.
    #[allow(clippy::type_complexity)]
    fn dispatch_concurrent(
        &self,
        engine: &dyn Vdbms,
        batch: &[QueryInstance],
        ctx: &ExecContext,
        workers: usize,
    ) -> Result<Vec<Option<(Result<QueryOutput>, u64)>>> {
        let degrade = self.degrade_mode();
        let next = AtomicUsize::new(0);
        let per_worker: Vec<(Vec<(usize, Result<QueryOutput>, u64)>, Result<()>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(instance) = batch.get(i) else {
                                    return (local, Ok(()));
                                };
                                let _span = trace::span_dyn("scheduler", || {
                                    format!("instance.{}.{i}", ctx.query_label)
                                });
                                let t0 = Instant::now();
                                if let Err(e) = self.ingest_instance(instance) {
                                    // Under degrade mode an ingest
                                    // failure costs that instance only;
                                    // otherwise it is a hard failure,
                                    // like under the sequential loop.
                                    if degrade {
                                        local.push((
                                            i,
                                            Err(e),
                                            t0.elapsed().as_nanos() as u64,
                                        ));
                                        continue;
                                    }
                                    return (local, Err(e));
                                }
                                let ictx = self.instance_context(ctx, i);
                                let result =
                                    engine.execute(instance, &self.dataset.videos, &ictx);
                                local.push((i, result, t0.elapsed().as_nanos() as u64));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        // A worker that somehow panicked past the
                        // pipeline's containment boundaries loses its
                        // local results; surface a typed error rather
                        // than poisoning the whole process.
                        Err(p) => {
                            fault::note_stage_panic();
                            (Vec::new(), Err(Error::StagePanic(panic_message(p))))
                        }
                    })
                    .collect()
            });

        let mut slots: Vec<Option<(Result<QueryOutput>, u64)>> =
            (0..batch.len()).map(|_| None).collect();
        for (local, status) in per_worker {
            for (i, result, nanos) in local {
                slots[i] = Some((result, nanos));
            }
            status?;
        }
        Ok(slots)
    }

    /// Validate the completed (instance, output) pairs of a batch
    /// against the reference implementation (and, for Q2(c), scene
    /// geometry). Under degrade mode cancelled/failed instances are
    /// absent from `completed`, so only what actually ran is judged.
    fn validate_batch(
        &self,
        completed: &[(&QueryInstance, QueryOutput)],
    ) -> Result<ValidationSummary> {
        // The reference runs get their own metrics so validation work
        // never pollutes the measured engine's stage aggregates.
        let ref_ctx = ExecContext {
            result_mode: ResultMode::Streaming,
            output_qp: self.cfg.output_qp,
            metrics: Arc::new(PipelineMetrics::default()),
            // The reference implementation defines correct output;
            // keep it on the sequential path so validation never
            // depends on the host's parallelism.
            workers: 1,
            query_label: String::new(),
            cancel: CancelToken::new(),
            stage_timeout: Some(vr_vdbms::io::DEFAULT_STAGE_TIMEOUT),
            // The oracle always runs the hand-written reference plan.
            optimizer: None,
            tenant: None,
            request_id: None,
        };
        let mut psnr_values: Vec<f64> = Vec::new();
        let mut box_matches = 0usize;
        let mut box_total = 0usize;
        let mut gt_found = 0usize;
        let mut gt_total = 0usize;
        let mut gt_false_pos = 0usize;
        let mut length_mismatch = false;

        for (instance, output) in completed {
            let reference = execute_reference(instance, &self.dataset.videos, &ref_ctx)?;
            match (output, &reference) {
                (
                    QueryOutput::BoxedVideo { boxes, .. },
                    QueryOutput::BoxedVideo { boxes: ref_boxes, .. },
                ) => {
                    // Semantic validation: every engine box must match
                    // a reference box within the ε = 0.5 Jaccard
                    // threshold (§4.1).
                    for (fb, rb) in boxes.iter().zip(ref_boxes) {
                        box_total += fb.len();
                        for b in fb {
                            if rb.iter().any(|r| {
                                r.class == b.class && b.rect.jaccard_distance(&r.rect) <= 0.5
                            }) {
                                box_matches += 1;
                            }
                        }
                    }
                    // Informational ground-truth recall / F1.
                    let (found, total, false_pos) =
                        self.ground_truth_match(instance, boxes)?;
                    gt_found += found;
                    gt_total += total;
                    gt_false_pos += false_pos;
                }
                (a, b) => {
                    let (Some(va), Some(vb)) = (a.primary_video(), b.primary_video()) else {
                        continue;
                    };
                    if va.len() != vb.len()
                        && (va.len() as i64 - vb.len() as i64).unsigned_abs() as usize
                            > vb.len() / 10 + 1
                    {
                        length_mismatch = true;
                        continue;
                    }
                    let fa = va.decode_all()?;
                    let fb = vb.decode_all()?;
                    for (x, y) in fa.iter().zip(&fb) {
                        if x.width() != y.width() || x.height() != y.height() {
                            length_mismatch = true;
                            break;
                        }
                        psnr_values.push(psnr_y(x, y));
                    }
                }
            }
        }

        let psnr = PsnrStats::from_values(&psnr_values);
        let semantic_agreement =
            (box_total > 0).then(|| box_matches as f64 / box_total as f64);
        let ground_truth_recall = (gt_total > 0).then(|| gt_found as f64 / gt_total as f64);
        let ground_truth_f1 = (gt_total > 0).then(|| {
            let precision = if gt_found + gt_false_pos == 0 {
                0.0
            } else {
                gt_found as f64 / (gt_found + gt_false_pos) as f64
            };
            let recall = gt_found as f64 / gt_total as f64;
            if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            }
        });
        let passed = !length_mismatch
            && psnr.map(|p| p.min >= VALIDATION_THRESHOLD_DB).unwrap_or(true)
            && semantic_agreement
                .map(|a| a >= self.cfg.semantic_threshold)
                .unwrap_or(true);
        Ok(ValidationSummary {
            psnr,
            semantic_agreement,
            ground_truth_recall,
            ground_truth_f1,
            passed,
        })
    }

    /// Match engine boxes against scene-geometry ground truth:
    /// returns (matched ground-truth objects, total ground-truth
    /// objects, unmatched engine boxes). Matching is IoU ≥ 0.5 against
    /// visible objects of the queried class; engine boxes overlapping
    /// *any* enumerated truth object (occluded/tiny included) are not
    /// penalized as false positives — the ignore-region protocol.
    fn ground_truth_match(
        &self,
        instance: &QueryInstance,
        boxes: &[Vec<vr_vdbms::io::OutputBox>],
    ) -> Result<(usize, usize, usize)> {
        let QuerySpec::Q2c { class } = &instance.spec else {
            return Ok((0, 0, 0));
        };
        let Some(&input_idx) = instance.inputs.first() else {
            return Ok((0, 0, 0));
        };
        let meta = self.dataset.meta[input_idx];
        let Some(camera_id) = meta.camera else {
            return Ok((0, 0, 0));
        };
        let camera = self.dataset.city.camera(camera_id).ok_or_else(|| {
            Error::NotFound(format!("camera {camera_id:?} (instance {}) in city", instance.index))
        })?;
        let info = self.dataset.videos[input_idx].video_info()?;
        let mut found = 0usize;
        let mut total = 0usize;
        let mut false_pos = 0usize;
        for (i, frame_boxes) in boxes.iter().enumerate() {
            let t = i as f64 * info.frame_rate.frame_interval_secs();
            let truth = frame_truth(&self.dataset.city, camera, t, info.width, info.height);
            for obj in truth.visible(*class) {
                total += 1;
                if frame_boxes.iter().any(|b| b.rect.iou(&obj.rect) >= 0.5) {
                    found += 1;
                }
            }
            for b in frame_boxes {
                let touches_any = truth
                    .objects
                    .iter()
                    .any(|o| !b.rect.intersect(&o.rect).is_empty());
                if !touches_any {
                    false_pos += 1;
                }
            }
        }
        Ok((found, total, false_pos))
    }
}

/// Best-effort text from a propagated panic payload.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Stream one input's video track through a named pipe at the capture
/// rate — the single-machine online transport ("a VDBMS may access
/// each video using either a named pipe … or via the RTP protocol",
/// §3.2). A producer thread paces frame writes; the consumer blocks
/// on reads, exactly as it would on a FIFO. Returns bytes delivered.
pub fn ingest_online_pipe(input: &InputVideo, speedup: f64) -> Result<usize> {
    use vr_storage::pipe::PipeRegistry;
    let info = input.video_info()?;
    let track = input
        .container
        .track_of_kind(TrackKind::Video)
        .ok_or_else(|| vr_base::Error::NotFound("video track".into()))?;
    let n = input.container.tracks()[track].samples.len();
    let registry = PipeRegistry::new();
    let writer = registry.create(&input.name, 4)?;
    let reader = registry.open(&input.name)?;
    std::thread::scope(|scope| -> Result<usize> {
        let producer = scope.spawn(move || -> Result<()> {
            let pacer = Pacer::with_speedup(info.frame_rate, speedup.max(1e-3));
            for i in 0..n {
                pacer.wait_for_frame(i as u64);
                // Zero-copy: the pipe message is a view into the
                // container's shared buffer, not a per-sample copy.
                let sample = input.container.sample_slice(track, i)?;
                writer.write(sample)?;
            }
            Ok(())
        });
        let mut bytes = 0usize;
        while let Some(frame) = reader.read() {
            bytes += frame.len();
        }
        match producer.join() {
            Ok(r) => r?,
            Err(p) => {
                vr_base::fault::note_stage_panic();
                return Err(vr_base::Error::StagePanic(panic_message(p)));
            }
        }
        Ok(bytes)
    })
}

/// Stream one input's video track through paced RTP (online-mode
/// ingest): packets are released at the capture rate and reassembled;
/// the returned count is the bytes delivered.
pub fn ingest_online(input: &InputVideo, speedup: f64) -> Result<usize> {
    let info = input.video_info()?;
    let track = input
        .container
        .track_of_kind(TrackKind::Video)
        .ok_or_else(|| vr_base::Error::NotFound("video track".into()))?;
    let n = input.container.tracks()[track].samples.len();
    let pacer = Pacer::with_speedup(info.frame_rate, speedup.max(1e-3));
    let mut tx = RtpPacketizer::new(input.name.len() as u32 + 1, 1400);
    let mut rx = RtpDepacketizer::new(input.name.len() as u32 + 1);
    let mut bytes = 0usize;
    // Packets produced by the sender — the depacketizer needs the
    // final sequence number to account for tail loss exactly.
    let mut produced: u64 = 0;
    for i in 0..n {
        pacer.wait_for_frame(i as u64);
        let sample = input.container.sample(track, i)?;
        for pkt in tx.packetize(sample, (i as u32).wrapping_mul(3000)) {
            produced += 1;
            // A dropped packet vanishes on the wire; the jitter buffer
            // discovers the gap and skips past it.
            if let Some(inj) = vr_base::fault::global() {
                if inj.drop_rtp_packet() {
                    continue;
                }
            }
            for frame in rx.push(&pkt)? {
                bytes += frame.len();
            }
        }
    }
    for frame in rx.finish(produced as u16) {
        bytes += frame.len();
    }
    vr_base::fault::note_skipped_packets(rx.skipped());
    Ok(bytes)
}
