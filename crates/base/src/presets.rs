//! The pregenerated dataset configurations of Table 2, plus the
//! scaled-down variants this repository uses for in-session experiment
//! reproduction.

use crate::units::{Duration, Resolution};
use crate::Hyperparameters;

/// A named benchmark dataset configuration ("We evaluate using version
/// 1.0 of the 4κ-short dataset", §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetPreset {
    /// Preset name as published (e.g. `"1k-short"`).
    pub name: &'static str,
    /// Scale factor `L`.
    pub scale: u32,
    /// Camera resolution `R`.
    pub resolution: Resolution,
    /// Simulation duration `t` in minutes.
    pub duration_mins: u64,
}

impl DatasetPreset {
    /// Hyperparameters for this preset with a user-chosen seed.
    pub fn hyperparameters(&self, seed: u64) -> Hyperparameters {
        Hyperparameters {
            scale: self.scale,
            resolution: self.resolution,
            duration: Duration::from_mins(self.duration_mins),
            seed,
        }
    }

    /// The same configuration with duration and resolution divided down
    /// for in-session reproduction (duration ÷ `time_div`, both
    /// resolution axes ÷ `res_div`). Used by the `repro_*` binaries.
    pub fn scaled_down(&self, time_div: u64, res_div: u32) -> Hyperparameters {
        Hyperparameters {
            scale: self.scale,
            resolution: self.resolution.scaled(1, res_div),
            duration: Duration::from_micros(
                Duration::from_mins(self.duration_mins).as_micros() / time_div.max(1),
            ),
            seed: 0,
        }
    }
}

/// The six pregenerated datasets of Table 2.
pub const PRESETS: [DatasetPreset; 6] = [
    DatasetPreset { name: "1k-short", scale: 2, resolution: Resolution::K1, duration_mins: 15 },
    DatasetPreset { name: "1k-long", scale: 4, resolution: Resolution::K1, duration_mins: 60 },
    DatasetPreset { name: "2k-short", scale: 2, resolution: Resolution::K2, duration_mins: 15 },
    DatasetPreset { name: "2k-long", scale: 4, resolution: Resolution::K2, duration_mins: 60 },
    DatasetPreset { name: "4k-short", scale: 2, resolution: Resolution::K4, duration_mins: 15 },
    DatasetPreset { name: "4k-long", scale: 4, resolution: Resolution::K4, duration_mins: 60 },
];

/// Look up a preset by name.
pub fn preset(name: &str) -> Option<&'static DatasetPreset> {
    PRESETS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let p = preset("1k-short").unwrap();
        assert_eq!((p.scale, p.resolution, p.duration_mins), (2, Resolution::K1, 15));
        let p = preset("4k-long").unwrap();
        assert_eq!((p.scale, p.resolution, p.duration_mins), (4, Resolution::K4, 60));
        assert!(preset("8k-epic").is_none());
        assert_eq!(PRESETS.len(), 6);
    }

    #[test]
    fn preset_to_hyperparameters() {
        let h = preset("2k-long").unwrap().hyperparameters(77);
        assert_eq!(h.scale, 4);
        assert_eq!(h.seed, 77);
        assert_eq!(h.duration.as_secs_f64(), 3600.0);
        assert_eq!(h.batch_size(), 16);
    }

    #[test]
    fn scaled_down_divides() {
        let h = preset("1k-short").unwrap().scaled_down(60, 4);
        assert_eq!(h.duration.as_secs_f64(), 15.0);
        assert_eq!(h.resolution, Resolution::new(240, 134));
    }
}
