//! Multi-tenant admission control: the robustness core of the query
//! server.
//!
//! A long-running server in front of the engines must stay predictable
//! when offered more work than the hardware can absorb. This module
//! provides an [`AdmissionController`] that every request passes
//! through before it may touch an engine:
//!
//! * a **bounded admission queue** — at most `max_concurrent` requests
//!   execute at once; up to `queue_depth` more may wait (blocking,
//!   deadline-aware); beyond that the request is rejected immediately
//!   instead of growing an unbounded backlog;
//! * **per-tenant concurrency quotas** — one tenant cannot occupy
//!   every slot and starve the rest;
//! * **priority-aware load shedding** — when the saturation gauge
//!   (published to the metrics registry as `admission.saturation`)
//!   crosses the degrade threshold, low-priority requests are admitted
//!   *degraded* (the caller runs them on a cheaper configuration);
//!   past the shed threshold they are rejected outright. High-priority
//!   requests are only ever refused by a full queue, their own
//!   tenant's quota/breaker, or a drain;
//! * **per-tenant circuit breakers** — `breaker_trip` consecutive
//!   failures open the tenant's breaker for a cooldown that doubles
//!   per trip (bounded); after the cooldown a single half-open probe
//!   is admitted, and its outcome closes or re-opens the breaker;
//! * **graceful drain** — [`begin_drain`](AdmissionController::begin_drain)
//!   stops admission (including waking queued waiters with a
//!   `Draining` rejection) while [`await_idle`](AdmissionController::await_idle)
//!   lets the owner flush in-flight work before shutting down.
//!
//! Every decision is counted, globally and per tenant, and the counts
//! are mirrored into the process metrics registry under `admission.*`
//! so the stress driver and the live `/metrics` endpoint see the same
//! accounting the server reports.

use crate::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Request classification
// ---------------------------------------------------------------------------

/// Priority class a request declares at admission. Two classes keep
/// the shedding contract crisp: under saturation, `Low` work degrades
/// and then sheds; `High` work never sheds on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    High,
    Low,
}

impl std::str::FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "high" | "hi" => Ok(Priority::High),
            "low" | "lo" => Ok(Priority::Low),
            other => Err(format!("priority must be high or low, got {other:?}")),
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Low => "low",
        })
    }
}

/// Why a request was refused. The server maps these onto `SHED`
/// responses; the stress driver folds them into its verdict (only
/// low-priority work may shed on load).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Saturation crossed the shed threshold (low priority only).
    Saturated,
    /// The bounded admission queue is full.
    QueueFull,
    /// The tenant is at its concurrency quota.
    Quota,
    /// The tenant's circuit breaker is open.
    BreakerOpen,
    /// The server is draining and admits nothing new.
    Draining,
    /// The request's deadline expired while it waited in the queue.
    DeadlineExpired,
}

impl ShedReason {
    /// Stable lower-snake label used in wire responses and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::Saturated => "saturated",
            ShedReason::QueueFull => "queue_full",
            ShedReason::Quota => "quota",
            ShedReason::BreakerOpen => "breaker_open",
            ShedReason::Draining => "draining",
            ShedReason::DeadlineExpired => "deadline_expired",
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Admission-control policy knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Requests executing concurrently (≥ 1).
    pub max_concurrent: usize,
    /// Requests allowed to wait for a slot once `max_concurrent` is
    /// reached; the queue is the only place a request blocks.
    pub queue_depth: usize,
    /// Concurrent requests one tenant may hold (≥ 1).
    pub tenant_quota: usize,
    /// Saturation (occupied slots + queue, over `max_concurrent`) at
    /// which low-priority admissions are flagged degraded.
    pub degrade_load: f64,
    /// Saturation at which low-priority admissions are shed outright.
    pub shed_load: f64,
    /// Consecutive failures that trip a tenant's breaker.
    pub breaker_trip: u32,
    /// Base breaker cooldown; doubles per successive trip (bounded at
    /// 2⁶ × base) so a persistently failing tenant backs off harder.
    pub breaker_cooldown: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_concurrent: crate::sync::hardware_parallelism(),
            queue_depth: 16,
            tenant_quota: 4,
            degrade_load: 0.75,
            shed_load: 1.25,
            breaker_trip: 3,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: everything from this tenant is rejected until `until`.
    Open { until: Instant },
    /// Cooldown elapsed: exactly one probe request may pass; its
    /// outcome decides between `Closed` and a re-`Open`.
    HalfOpen { probing: bool },
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// Successive trips without an intervening success (backoff
    /// exponent, capped).
    trips: u32,
    total_trips: u64,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            total_trips: 0,
        }
    }

    /// Whether a request may pass now. Returns `(allowed, is_probe)`.
    fn check(&mut self, now: Instant) -> (bool, bool) {
        match self.state {
            BreakerState::Closed => (true, false),
            BreakerState::Open { until } if now < until => (false, false),
            BreakerState::Open { .. } => {
                self.state = BreakerState::HalfOpen { probing: true };
                (true, true)
            }
            BreakerState::HalfOpen { probing: false } => {
                self.state = BreakerState::HalfOpen { probing: true };
                (true, true)
            }
            BreakerState::HalfOpen { probing: true } => (false, false),
        }
    }

    fn trip(&mut self, now: Instant, base: Duration) {
        let cooldown = base.saturating_mul(1u32 << self.trips.min(6));
        self.state = BreakerState::Open { until: now + cooldown };
        self.trips += 1;
        self.total_trips += 1;
        self.consecutive_failures = 0;
    }

    fn on_outcome(&mut self, ok: bool, probe: bool, now: Instant, trip_at: u32, base: Duration) {
        if ok {
            self.state = BreakerState::Closed;
            self.consecutive_failures = 0;
            self.trips = 0;
            return;
        }
        if probe {
            // A failed probe re-opens immediately with deeper backoff.
            self.trip(now, base);
            return;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= trip_at {
            self.trip(now, base);
        }
    }
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

/// Per-tenant decision and outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    pub admitted: u64,
    /// Admitted after blocking in the queue (subset of `admitted`).
    pub queue_waited: u64,
    /// Total microseconds admitted requests spent queued. The full
    /// distribution is in the `admission.queue_wait_us.<tenant>`
    /// registry histogram; the ledger keeps the total so the stress
    /// driver can cross-check without scraping `/metrics`.
    pub queue_wait_us: u64,
    /// Admitted with the degraded flag set (subset of `admitted`).
    pub degraded: u64,
    pub shed_saturated: u64,
    pub shed_queue_full: u64,
    pub shed_quota: u64,
    pub shed_breaker: u64,
    pub shed_draining: u64,
    pub shed_deadline: u64,
    pub completed_ok: u64,
    pub failed: u64,
    pub breaker_trips: u64,
    /// OK completions answered from a semantic side index (no scan).
    pub index_served: u64,
    /// OK completions that scanned/decoded their inputs. Every `OK`
    /// response is one or the other, so per tenant
    /// `index_served + rescan_served` equals the driver-visible OK
    /// count exactly (cancelled completions are in neither).
    pub rescan_served: u64,
}

impl TenantCounters {
    /// Every shed, regardless of reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_saturated
            + self.shed_queue_full
            + self.shed_quota
            + self.shed_breaker
            + self.shed_draining
            + self.shed_deadline
    }

    fn shed_slot(&mut self, reason: ShedReason) -> &mut u64 {
        match reason {
            ShedReason::Saturated => &mut self.shed_saturated,
            ShedReason::QueueFull => &mut self.shed_queue_full,
            ShedReason::Quota => &mut self.shed_quota,
            ShedReason::BreakerOpen => &mut self.shed_breaker,
            ShedReason::Draining => &mut self.shed_draining,
            ShedReason::DeadlineExpired => &mut self.shed_deadline,
        }
    }
}

/// Point-in-time view of the controller: live occupancy plus the
/// per-tenant ledger. Tenants are ordered, so the JSON rendering is
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct AdmissionSnapshot {
    pub active: usize,
    pub queued: usize,
    pub draining: bool,
    pub tenants: BTreeMap<String, TenantCounters>,
}

impl AdmissionSnapshot {
    /// Sum of one counter across tenants.
    fn total(&self, f: impl Fn(&TenantCounters) -> u64) -> u64 {
        self.tenants.values().map(f).sum()
    }

    /// Deterministic JSON rendering (the server's `STATS` body).
    pub fn to_json(&self) -> String {
        self.to_json_with_slo(None)
    }

    /// [`to_json`](Self::to_json), optionally appending a pre-rendered
    /// `"slo"` block (the query server passes its
    /// [`crate::obs::slo::SloTracker::render_json`] output).
    pub fn to_json_with_slo(&self, slo: Option<&str>) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\n  \"active\": {},\n  \"queued\": {},\n  \"draining\": {},\n",
            self.active, self.queued, self.draining
        ));
        out.push_str(&format!(
            "  \"admitted\": {},\n  \"degraded\": {},\n  \"shed\": {},\n  \"breaker_trips\": {},\n",
            self.total(|t| t.admitted),
            self.total(|t| t.degraded),
            self.total(|t| t.shed_total()),
            self.total(|t| t.breaker_trips),
        ));
        out.push_str(&format!(
            "  \"index_served\": {},\n  \"rescan_served\": {},\n",
            self.total(|t| t.index_served),
            self.total(|t| t.rescan_served),
        ));
        out.push_str(&format!(
            "  \"queue_waited\": {},\n  \"queue_wait_us\": {},\n",
            self.total(|t| t.queue_waited),
            self.total(|t| t.queue_wait_us),
        ));
        out.push_str("  \"tenants\": {\n");
        let mut first = true;
        for (name, t) in &self.tenants {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{}\": {{\"admitted\": {}, \"degraded\": {}, \"shed_saturated\": {}, \
                 \"shed_queue_full\": {}, \"shed_quota\": {}, \"shed_breaker\": {}, \
                 \"shed_draining\": {}, \"shed_deadline\": {}, \"completed_ok\": {}, \
                 \"failed\": {}, \"breaker_trips\": {}, \"index_served\": {}, \
                 \"rescan_served\": {}, \"queue_waited\": {}, \"queue_wait_us\": {}}}",
                crate::obs::json_escape(name),
                t.admitted,
                t.degraded,
                t.shed_saturated,
                t.shed_queue_full,
                t.shed_quota,
                t.shed_breaker,
                t.shed_draining,
                t.shed_deadline,
                t.completed_ok,
                t.failed,
                t.breaker_trips,
                t.index_served,
                t.rescan_served,
                t.queue_waited,
                t.queue_wait_us,
            ));
        }
        out.push_str("\n  }");
        if let Some(slo) = slo {
            // Re-indent the block one level so the combined document
            // stays consistently pretty-printed.
            out.push_str(",\n  \"slo\": ");
            for (i, line) in slo.trim_end().lines().enumerate() {
                if i > 0 {
                    out.push_str("\n  ");
                }
                out.push_str(line);
            }
        }
        out.push_str("\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct State {
    active: usize,
    queued: usize,
    per_tenant_active: BTreeMap<String, usize>,
    breakers: BTreeMap<String, Breaker>,
    counters: BTreeMap<String, TenantCounters>,
    draining: bool,
}

/// The admission gate. Shared (`Arc`) between the server's connection
/// handlers; every public method takes `&self`.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    /// Signals queued waiters: a slot freed, or a drain began.
    slot_freed: Condvar,
    /// Signals the drain path: active reached zero.
    idle: Condvar,
}

/// An admitted request's RAII slot. Owns an `Arc` of its controller,
/// so it may travel to whichever thread executes the request. Dropping
/// it releases the slot; the owner should first settle the outcome
/// with [`succeed`](Permit::succeed) or [`fail`](Permit::fail) so the
/// tenant's breaker sees it (an unsettled drop counts as success for
/// the breaker — releasing must never trip anything).
#[derive(Debug)]
pub struct Permit {
    controller: std::sync::Arc<AdmissionController>,
    tenant: String,
    /// The caller should run this request on a cheaper configuration.
    degraded: bool,
    /// This permit is the tenant's half-open breaker probe.
    probe: bool,
    /// Arrival-minted request id, when admitted via
    /// [`AdmissionController::admit_request`].
    request_id: Option<u64>,
    /// Time this request spent blocked in the admission queue.
    queue_wait: Duration,
    settled: bool,
}

impl Permit {
    /// Whether the controller asked for degraded execution.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The tenant this permit belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The arrival-minted request id carried through admission, if the
    /// request came in via [`AdmissionController::admit_request`].
    pub fn request_id(&self) -> Option<u64> {
        self.request_id
    }

    /// How long the request waited in the admission queue (zero when a
    /// slot was free at arrival).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// Settle the request as succeeded and release the slot.
    pub fn succeed(mut self) {
        self.settle(true);
    }

    /// Settle the request as failed (feeding the tenant's breaker) and
    /// release the slot.
    pub fn fail(mut self) {
        self.settle(false);
    }

    fn settle(&mut self, ok: bool) {
        if self.settled {
            return;
        }
        self.settled = true;
        self.controller.release(&self.tenant, ok, self.probe);
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        // An unsettled drop (e.g. the handler unwound) releases the
        // slot as a success so the breaker only reacts to explicit
        // failures.
        self.settle(true);
    }
}

impl AdmissionController {
    /// Build a controller; degenerate configs are clamped sane.
    pub fn new(cfg: AdmissionConfig) -> Self {
        let cfg = AdmissionConfig {
            max_concurrent: cfg.max_concurrent.max(1),
            tenant_quota: cfg.tenant_quota.max(1),
            breaker_trip: cfg.breaker_trip.max(1),
            ..cfg
        };
        Self {
            cfg,
            state: Mutex::new(State {
                active: 0,
                queued: 0,
                per_tenant_active: BTreeMap::new(),
                breakers: BTreeMap::new(),
                counters: BTreeMap::new(),
                draining: false,
            }),
            slot_freed: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Saturation: occupied slots plus queue length over the
    /// concurrency limit. 1.0 means every slot busy and nothing
    /// queued; the shed threshold is typically above 1.0 (slots busy
    /// *and* a backlog).
    fn saturation(&self, st: &State) -> f64 {
        (st.active + st.queued) as f64 / self.cfg.max_concurrent as f64
    }

    /// Publish the live occupancy to the metrics registry — the
    /// saturation gauge is the signal the shedding policy keys on, and
    /// exposing it makes the decision auditable from `/metrics`.
    fn publish_gauges(&self, st: &State) {
        crate::obs::metrics::gauge("admission.active").set(st.active as f64);
        crate::obs::metrics::gauge("admission.queued").set(st.queued as f64);
        crate::obs::metrics::gauge("admission.saturation").set(self.saturation(st));
    }

    fn note_shed(&self, st: &mut State, tenant: &str, reason: ShedReason) -> ShedReason {
        *st.counters.entry(tenant.to_string()).or_default().shed_slot(reason) += 1;
        crate::obs::metrics::counter(&format!("admission.shed.{}", reason.label())).inc();
        reason
    }

    /// Request admission for `tenant` at `priority`. Blocks in the
    /// bounded queue while all slots are busy (respecting `deadline`);
    /// returns a [`Permit`] on success or the [`ShedReason`] on
    /// refusal. This is the only blocking point a request passes
    /// through before execution. Takes `&Arc<Self>` so the permit can
    /// outlive the caller's borrow and move to an executor thread.
    pub fn admit(
        self: &std::sync::Arc<Self>,
        tenant: &str,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<Permit, ShedReason> {
        self.admit_inner(tenant, priority, deadline, None)
    }

    /// [`admit`](Self::admit) with request-scoped identity: the
    /// permit carries the [`RequestCtx`](crate::obs::qlog::RequestCtx)
    /// id so every downstream decision (route, plan, spans, query log)
    /// is attributable to the arrival that caused it.
    pub fn admit_request(
        self: &std::sync::Arc<Self>,
        req: &crate::obs::qlog::RequestCtx,
        deadline: Option<Instant>,
    ) -> Result<Permit, ShedReason> {
        self.admit_inner(&req.tenant, req.priority, deadline, Some(req.id))
    }

    fn admit_inner(
        self: &std::sync::Arc<Self>,
        tenant: &str,
        priority: Priority,
        deadline: Option<Instant>,
        request_id: Option<u64>,
    ) -> Result<Permit, ShedReason> {
        let now = Instant::now();
        let mut st = self.state.lock();
        if st.draining {
            return Err(self.note_shed(&mut st, tenant, ShedReason::Draining));
        }
        // Breaker first: a tripped tenant is refused before it can
        // occupy queue space.
        let (allowed, probe) = st
            .breakers
            .entry(tenant.to_string())
            .or_insert_with(Breaker::new)
            .check(now);
        if !allowed {
            return Err(self.note_shed(&mut st, tenant, ShedReason::BreakerOpen));
        }
        // Load shedding for low priority, off the same saturation
        // number the gauge publishes.
        let saturation = self.saturation(&st);
        let degraded = if priority == Priority::Low {
            if saturation >= self.cfg.shed_load {
                self.release_probe(&mut st, tenant, probe);
                return Err(self.note_shed(&mut st, tenant, ShedReason::Saturated));
            }
            saturation >= self.cfg.degrade_load
        } else {
            false
        };
        // Tenant quota.
        if st.per_tenant_active.get(tenant).copied().unwrap_or(0) >= self.cfg.tenant_quota {
            self.release_probe(&mut st, tenant, probe);
            return Err(self.note_shed(&mut st, tenant, ShedReason::Quota));
        }
        // Slot or bounded queue.
        let mut queue_wait = Duration::ZERO;
        let mut waited = false;
        if st.active >= self.cfg.max_concurrent {
            if st.queued >= self.cfg.queue_depth {
                self.release_probe(&mut st, tenant, probe);
                return Err(self.note_shed(&mut st, tenant, ShedReason::QueueFull));
            }
            let wait_start = Instant::now();
            waited = true;
            st.queued += 1;
            self.publish_gauges(&st);
            loop {
                if st.draining {
                    st.queued -= 1;
                    self.release_probe(&mut st, tenant, probe);
                    self.publish_gauges(&st);
                    return Err(self.note_shed(&mut st, tenant, ShedReason::Draining));
                }
                if st.active < self.cfg.max_concurrent
                    && st.per_tenant_active.get(tenant).copied().unwrap_or(0)
                        < self.cfg.tenant_quota
                {
                    st.queued -= 1;
                    queue_wait = wait_start.elapsed();
                    break;
                }
                let wait = match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            st.queued -= 1;
                            self.release_probe(&mut st, tenant, probe);
                            self.publish_gauges(&st);
                            return Err(self.note_shed(
                                &mut st,
                                tenant,
                                ShedReason::DeadlineExpired,
                            ));
                        }
                        d - now
                    }
                    // No deadline: re-check periodically so a drain or
                    // a freed quota slot is never missed for long.
                    None => Duration::from_millis(50),
                };
                let (guard, _timed_out) = self.slot_freed.wait_timeout(st, wait);
                st = guard;
            }
        }
        st.active += 1;
        *st.per_tenant_active.entry(tenant.to_string()).or_insert(0) += 1;
        let wait_us = queue_wait.as_micros() as u64;
        {
            let c = st.counters.entry(tenant.to_string()).or_default();
            c.admitted += 1;
            if degraded {
                c.degraded += 1;
            }
            if waited {
                c.queue_waited += 1;
                c.queue_wait_us += wait_us;
            }
        }
        crate::obs::metrics::counter("admission.admitted").inc();
        if degraded {
            crate::obs::metrics::counter("admission.degraded").inc();
        }
        // Every admission lands in the tenant's queue-wait histogram
        // (zero for a free slot), so its count equals `admitted` and
        // p50/p95/p99 describe what admission actually cost the tenant.
        crate::obs::metrics::histogram(&format!("admission.queue_wait_us.{tenant}"))
            .observe(wait_us);
        self.publish_gauges(&st);
        drop(st);
        Ok(Permit {
            controller: std::sync::Arc::clone(self),
            tenant: tenant.to_string(),
            degraded,
            probe,
            request_id,
            queue_wait,
            settled: false,
        })
    }

    /// A refusal after the breaker handed out its half-open probe must
    /// hand the probe back, or the breaker would wedge waiting for an
    /// outcome that never comes.
    fn release_probe(&self, st: &mut State, tenant: &str, probe: bool) {
        if probe {
            if let Some(b) = st.breakers.get_mut(tenant) {
                if b.state == (BreakerState::HalfOpen { probing: true }) {
                    b.state = BreakerState::HalfOpen { probing: false };
                }
            }
        }
    }

    /// Release a permit's slot and feed the outcome to the tenant's
    /// breaker.
    fn release(&self, tenant: &str, ok: bool, probe: bool) {
        let now = Instant::now();
        let mut st = self.state.lock();
        st.active = st.active.saturating_sub(1);
        if let Some(n) = st.per_tenant_active.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
        let trips_before = st.breakers.get(tenant).map(|b| b.total_trips).unwrap_or(0);
        if let Some(b) = st.breakers.get_mut(tenant) {
            b.on_outcome(ok, probe, now, self.cfg.breaker_trip, self.cfg.breaker_cooldown);
        }
        let trips_after = st.breakers.get(tenant).map(|b| b.total_trips).unwrap_or(0);
        {
            let c = st.counters.entry(tenant.to_string()).or_default();
            if ok {
                c.completed_ok += 1;
            } else {
                c.failed += 1;
            }
            c.breaker_trips += trips_after - trips_before;
        }
        if trips_after > trips_before {
            crate::obs::metrics::counter("admission.breaker_trips").inc();
        }
        self.publish_gauges(&st);
        let idle = st.active == 0;
        drop(st);
        self.slot_freed.notify_all();
        if idle {
            self.idle.notify_all();
        }
    }

    /// Stop admitting: every subsequent [`admit`](Self::admit) — and
    /// every request already waiting in the queue — is refused with
    /// [`ShedReason::Draining`]. In-flight permits are unaffected;
    /// pair with [`await_idle`](Self::await_idle) to flush them.
    pub fn begin_drain(&self) {
        let mut st = self.state.lock();
        st.draining = true;
        self.publish_gauges(&st);
        drop(st);
        self.slot_freed.notify_all();
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.state.lock().draining
    }

    /// Block until no request is in flight, or `timeout` elapses.
    /// Returns whether the controller reached idle.
    pub fn await_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self.idle.wait_timeout(st, deadline - now);
            st = guard;
        }
        true
    }

    /// Record which execution route served an OK completion: the
    /// semantic side index, or a scan of the inputs. Called by the
    /// server alongside `Permit::succeed` (never for cancellations),
    /// so per tenant `index_served + rescan_served` equals the
    /// driver-visible OK count exactly.
    pub fn note_route(&self, tenant: &str, index: bool) {
        let mut st = self.state.lock();
        let c = st.counters.entry(tenant.to_string()).or_default();
        if index {
            c.index_served += 1;
            crate::obs::metrics::counter("admission.index_served").inc();
        } else {
            c.rescan_served += 1;
            crate::obs::metrics::counter("admission.rescan_served").inc();
        }
    }

    /// Point-in-time accounting snapshot.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let st = self.state.lock();
        AdmissionSnapshot {
            active: st.active,
            queued: st.queued,
            draining: st.draining,
            tenants: st.counters.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 2,
            queue_depth: 2,
            tenant_quota: 2,
            degrade_load: 0.75,
            shed_load: 1.25,
            breaker_trip: 2,
            breaker_cooldown: Duration::from_millis(40),
        }
    }

    #[test]
    fn admits_until_queue_overflows() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig { queue_depth: 0, ..cfg() }));
        let a = ctl.admit("t", Priority::High, None).unwrap();
        let _b = ctl.admit("u", Priority::High, None).unwrap();
        // Slots full, queue depth 0: immediate QueueFull for a third
        // tenant (quota/shed don't apply first).
        assert_eq!(ctl.admit("v", Priority::High, None).unwrap_err(), ShedReason::QueueFull);
        a.succeed();
        let snap = ctl.snapshot();
        assert_eq!(snap.active, 1);
        assert_eq!(snap.tenants["v"].shed_queue_full, 1);
        assert_eq!(snap.tenants["t"].completed_ok, 1);
    }

    #[test]
    fn queued_request_gets_the_freed_slot() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        let a = ctl.admit("t", Priority::High, None).unwrap();
        let _b = ctl.admit("u", Priority::High, None).unwrap();
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            ctl2.admit("v", Priority::High, None).map(|p| p.succeed()).is_ok()
        });
        std::thread::sleep(Duration::from_millis(30));
        a.succeed();
        assert!(waiter.join().unwrap(), "queued request must be admitted after a release");
    }

    #[test]
    fn queue_wait_respects_the_deadline() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        let _a = ctl.admit("t", Priority::High, None).unwrap();
        let _b = ctl.admit("u", Priority::High, None).unwrap();
        let t0 = Instant::now();
        let err = ctl
            .admit("v", Priority::High, Some(Instant::now() + Duration::from_millis(50)))
            .unwrap_err();
        assert_eq!(err, ShedReason::DeadlineExpired);
        assert!(t0.elapsed() >= Duration::from_millis(45));
        assert_eq!(ctl.snapshot().tenants["v"].shed_deadline, 1);
    }

    #[test]
    fn tenant_quota_isolates_tenants() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: 8,
            tenant_quota: 2,
            ..cfg()
        }));
        let _a = ctl.admit("t", Priority::High, None).unwrap();
        let _b = ctl.admit("t", Priority::High, None).unwrap();
        assert_eq!(ctl.admit("t", Priority::High, None).unwrap_err(), ShedReason::Quota);
        // Another tenant is unaffected.
        assert!(ctl.admit("u", Priority::High, None).is_ok());
        assert_eq!(ctl.snapshot().tenants["t"].shed_quota, 1);
    }

    #[test]
    fn low_priority_degrades_then_sheds_under_load() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: 2,
            queue_depth: 8,
            tenant_quota: 8,
            ..cfg()
        }));
        // Empty: low priority admitted cleanly.
        let a = ctl.admit("lo", Priority::Low, None).unwrap();
        assert!(!a.degraded());
        let _b = ctl.admit("hi", Priority::High, None).unwrap();
        // active 2 / max 2 = 1.0 >= degrade_load: a third low admit
        // would queue; give it a short deadline and verify it reports
        // DeadlineExpired (not Saturated — 1.0 < shed_load 1.25).
        let err = ctl
            .admit("lo", Priority::Low, Some(Instant::now() + Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err, ShedReason::DeadlineExpired);
        // Push saturation past shed_load (1.25): with both slots busy
        // one queued waiter makes (active + queued) / max = 1.5.
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            // Parks in the queue (saturation becomes 1.5).
            ctl2.admit("hi", Priority::High, Some(Instant::now() + Duration::from_millis(400)))
        });
        std::thread::sleep(Duration::from_millis(50));
        let err = ctl.admit("lo", Priority::Low, None).unwrap_err();
        assert_eq!(err, ShedReason::Saturated, "low priority must shed past the threshold");
        // High priority still only queues/expires, never sheds on load.
        drop(a);
        let _ = waiter.join().unwrap();
        let snap = ctl.snapshot();
        assert_eq!(snap.tenants["lo"].shed_saturated, 1);
        assert_eq!(snap.tenants["hi"].shed_saturated, 0);
    }

    #[test]
    fn degraded_flag_set_between_degrade_and_shed_thresholds() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: 4,
            queue_depth: 8,
            tenant_quota: 8,
            degrade_load: 0.5,
            shed_load: 2.0,
            ..cfg()
        }));
        let _a = ctl.admit("x", Priority::High, None).unwrap();
        let _b = ctl.admit("x", Priority::High, None).unwrap();
        // Saturation 0.5 >= degrade_load: low admits degraded, high
        // does not.
        let lo = ctl.admit("lo", Priority::Low, None).unwrap();
        assert!(lo.degraded());
        let hi = ctl.admit("hi", Priority::High, None).unwrap();
        assert!(!hi.degraded());
        let snap = ctl.snapshot();
        assert_eq!(snap.tenants["lo"].degraded, 1);
        assert_eq!(snap.tenants["hi"].degraded, 0);
    }

    #[test]
    fn breaker_trips_half_opens_and_recloses() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        // Two consecutive failures trip the breaker (breaker_trip=2).
        ctl.admit("t", Priority::High, None).unwrap().fail();
        ctl.admit("t", Priority::High, None).unwrap().fail();
        let err = ctl.admit("t", Priority::High, None).unwrap_err();
        assert_eq!(err, ShedReason::BreakerOpen);
        // Other tenants are unaffected.
        ctl.admit("u", Priority::High, None).unwrap().succeed();
        // After the cooldown, exactly one probe passes.
        std::thread::sleep(Duration::from_millis(50));
        let probe = ctl.admit("t", Priority::High, None).unwrap();
        assert_eq!(
            ctl.admit("t", Priority::High, None).unwrap_err(),
            ShedReason::BreakerOpen,
            "only one half-open probe may be in flight"
        );
        probe.succeed();
        // Probe success closes the breaker.
        ctl.admit("t", Priority::High, None).unwrap().succeed();
        let snap = ctl.snapshot();
        assert_eq!(snap.tenants["t"].breaker_trips, 1);
        assert!(snap.tenants["t"].shed_breaker >= 2);
    }

    #[test]
    fn failed_probe_reopens_with_deeper_backoff() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        ctl.admit("t", Priority::High, None).unwrap().fail();
        ctl.admit("t", Priority::High, None).unwrap().fail();
        std::thread::sleep(Duration::from_millis(50));
        // Half-open probe fails: breaker re-opens with doubled
        // cooldown (80ms), so 50ms later it is still open.
        ctl.admit("t", Priority::High, None).unwrap().fail();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(ctl.admit("t", Priority::High, None).unwrap_err(), ShedReason::BreakerOpen);
        // ...but after the full backoff it half-opens again.
        std::thread::sleep(Duration::from_millis(60));
        ctl.admit("t", Priority::High, None).unwrap().succeed();
        assert_eq!(ctl.snapshot().tenants["t"].breaker_trips, 2);
    }

    #[test]
    fn drain_refuses_new_work_and_flushes_in_flight() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        let permit = ctl.admit("t", Priority::High, None).unwrap();
        ctl.begin_drain();
        assert!(ctl.draining());
        assert_eq!(ctl.admit("u", Priority::High, None).unwrap_err(), ShedReason::Draining);
        // Not idle while the permit is out.
        assert!(!ctl.await_idle(Duration::from_millis(30)));
        let finisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            permit.succeed();
        });
        assert!(ctl.await_idle(Duration::from_millis(500)), "drain must observe idle");
        finisher.join().unwrap();
        assert_eq!(ctl.snapshot().tenants["u"].shed_draining, 1);
    }

    #[test]
    fn drain_wakes_queued_waiters() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        let _a = ctl.admit("t", Priority::High, None).unwrap();
        let _b = ctl.admit("u", Priority::High, None).unwrap();
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || ctl2.admit("v", Priority::High, None).err());
        std::thread::sleep(Duration::from_millis(30));
        ctl.begin_drain();
        assert_eq!(waiter.join().unwrap(), Some(ShedReason::Draining));
    }

    #[test]
    fn unsettled_drop_releases_without_feeding_the_breaker() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        for _ in 0..5 {
            drop(ctl.admit("t", Priority::High, None).unwrap());
        }
        // Five unsettled drops: slot accounting intact, breaker calm.
        let held = ctl.admit("t", Priority::High, None).unwrap();
        let snap = ctl.snapshot();
        assert_eq!(snap.active, 1);
        assert_eq!(snap.tenants["t"].breaker_trips, 0);
        assert_eq!(snap.tenants["t"].completed_ok, 5);
        held.succeed();
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        ctl.admit("b", Priority::Low, None).unwrap().succeed();
        ctl.admit("a", Priority::High, None).unwrap().fail();
        let json = ctl.snapshot().to_json();
        assert_eq!(json, ctl.snapshot().to_json());
        // Ordered tenant keys.
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        assert!(a < b, "tenants must render in order:\n{json}");
        assert!(json.contains("\"admitted\": 2"));
        assert!(json.contains("\"failed\": 1"));
    }

    #[test]
    fn route_accounting_splits_ok_completions_per_tenant() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        ctl.admit("a", Priority::High, None).unwrap().succeed();
        ctl.note_route("a", true);
        ctl.admit("a", Priority::High, None).unwrap().succeed();
        ctl.note_route("a", false);
        ctl.admit("b", Priority::Low, None).unwrap().succeed();
        ctl.note_route("b", false);
        let snap = ctl.snapshot();
        let a = snap.tenants["a"];
        let b = snap.tenants["b"];
        assert_eq!((a.index_served, a.rescan_served), (1, 1));
        assert_eq!((b.index_served, b.rescan_served), (0, 1));
        assert_eq!(a.index_served + a.rescan_served, a.completed_ok);
        let json = snap.to_json();
        assert!(json.contains("\"index_served\": 1,\n"), "totals line:\n{json}");
        assert!(json.contains("\"rescan_served\": 2,\n"), "totals line:\n{json}");
    }

    #[test]
    fn queue_wait_is_measured_and_ledgered() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        let a = ctl.admit("t", Priority::High, None).unwrap();
        // A free slot at arrival: zero wait, not counted as queued.
        assert_eq!(a.queue_wait(), Duration::ZERO);
        assert_eq!(a.request_id(), None);
        let _b = ctl.admit("u", Priority::High, None).unwrap();
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            let req = crate::obs::qlog::RequestCtx {
                id: 7,
                tenant: "v".into(),
                priority: Priority::High,
            };
            ctl2.admit_request(&req, None)
        });
        std::thread::sleep(Duration::from_millis(30));
        a.succeed();
        let permit = waiter.join().unwrap().expect("queued request admitted");
        assert_eq!(permit.request_id(), Some(7), "admit_request threads the arrival id");
        assert!(
            permit.queue_wait() >= Duration::from_millis(20),
            "measured wait {:?} must cover the blocked interval",
            permit.queue_wait()
        );
        permit.succeed();
        let snap = ctl.snapshot();
        assert_eq!(snap.tenants["v"].queue_waited, 1);
        assert!(snap.tenants["v"].queue_wait_us >= 20_000);
        assert_eq!(snap.tenants["t"].queue_waited, 0);
        assert_eq!(snap.tenants["t"].queue_wait_us, 0);
        let json = snap.to_json();
        assert!(json.contains("\"queue_waited\": 1,"), "ledger json:\n{json}");
    }

    #[test]
    fn slo_block_is_appended_only_when_provided() {
        let ctl = Arc::new(AdmissionController::new(cfg()));
        ctl.admit("t", Priority::High, None).unwrap().succeed();
        let plain = ctl.snapshot().to_json();
        assert!(!plain.contains("\"slo\""));
        let with = ctl.snapshot().to_json_with_slo(Some("{\n  \"target\": 0.950\n}"));
        assert!(
            with.contains(",\n  \"slo\": {\n    \"target\": 0.950\n  }\n}\n"),
            "slo block must be re-indented into the document:\n{with}"
        );
    }

    #[test]
    fn concurrent_hammering_accounts_every_request_exactly_once() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: 3,
            queue_depth: 3,
            tenant_quota: 3,
            ..cfg()
        }));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let ctl = Arc::clone(&ctl);
                std::thread::spawn(move || {
                    let tenant = if i % 2 == 0 { "even" } else { "odd" };
                    let mut admitted = 0u64;
                    let mut shed = 0u64;
                    for _ in 0..50 {
                        match ctl.admit(
                            tenant,
                            Priority::Low,
                            Some(Instant::now() + Duration::from_millis(20)),
                        ) {
                            Ok(p) => {
                                admitted += 1;
                                std::thread::sleep(Duration::from_micros(200));
                                p.succeed();
                            }
                            Err(_) => shed += 1,
                        }
                    }
                    (admitted, shed)
                })
            })
            .collect();
        let (mut admitted, mut shed) = (0u64, 0u64);
        for t in threads {
            let (a, s) = t.join().unwrap();
            admitted += a;
            shed += s;
        }
        assert_eq!(admitted + shed, 400, "every request settles exactly once");
        let snap = ctl.snapshot();
        assert_eq!(snap.active, 0, "all slots returned");
        assert_eq!(snap.queued, 0, "queue drained");
        let ledger_admitted: u64 = snap.tenants.values().map(|t| t.admitted).sum();
        let ledger_shed: u64 = snap.tenants.values().map(|t| t.shed_total()).sum();
        assert_eq!(ledger_admitted, admitted);
        assert_eq!(ledger_shed, shed);
        let ok: u64 = snap.tenants.values().map(|t| t.completed_ok).sum();
        assert_eq!(ok, admitted, "every admitted request completed");
    }
}
