//! Observability: span tracing and a process-global metrics registry.
//!
//! This module is the workspace's single telemetry surface. It has two
//! halves with one shared contract — *telemetry must never feed back
//! into query results*:
//!
//! * [`trace`] — a span tracer ([`trace::span`] guards record
//!   enter/exit with monotonic timestamps, thread track ids, and
//!   parent links) plus a chrome-trace (`trace_event` JSON) exporter
//!   for `chrome://tracing` / Perfetto. Off by default; enabled by the
//!   CLI via `--trace-out` / `VR_TRACE`. With the `obs` cargo feature
//!   disabled the call sites compile to no-ops.
//! * [`metrics`] — named counters, gauges, and fixed-bucket latency
//!   histograms (p50/p95/p99 snapshots) in a process-global
//!   [`metrics::Registry`], exported as deterministic JSON/text (and
//!   Prometheus text for the live endpoint) and diffed per query with
//!   [`metrics::MetricsSnapshot::since`].
//!
//! Layer 2 (EXPLAIN ANALYZE support) builds three more surfaces on the
//! same contract:
//!
//! * [`alloc`] — a counting `GlobalAlloc` wrapper with per-thread
//!   scoped accounting (allocations, bytes, high-water marks), one
//!   relaxed atomic per allocation when tracking is off
//!   (`VR_ALLOC_TRACK` / [`alloc::set_tracking`]);
//! * [`folded`] — collapsed-stacks (flamegraph) export of the span
//!   buffer, with a self-time invariant check;
//! * [`serve`] — a loopback-bound `TcpListener` endpoint
//!   (`/metrics`, `/metrics.json`, `/healthz`, `/explain`, plus
//!   registered views such as `/slo` and `/requests`) serving
//!   read-only snapshots while a run is in flight.
//!
//! Layer 3 (request-scoped serving observability) adds two more:
//!
//! * [`qlog`] — per-request identity ([`qlog::RequestCtx`]) and a
//!   structured JSON-lines query log with deterministic field order,
//!   plan digests, and slow-query `EXPLAIN ANALYZE` exemplars;
//! * [`slo`] — per-`tenant/priority` latency objectives with
//!   rolling-window error-budget burn rates, surfaced via `/slo` and
//!   the `STATS` `slo` block.
//!
//! ### Span taxonomy
//!
//! | category    | names                                   | recorded by |
//! |-------------|-----------------------------------------|-------------|
//! | `pipeline`  | `scan`/`decode`/`kernel`/`encode`/`sink`, `run_*` policies | vr-vdbms stage execution |
//! | `decoder`   | `decode_parallel`, `gop_chunk<i>`, `conceal` | GOP-parallel decode, resilient concealment |
//! | `scheduler` | `instance.<query>.<index>`              | VCD batch scheduler (both dispatch modes) |
//! | `server`    | `request.req-<id>.<tenant>`             | query server per-request lanes |
//! | `request`   | `<request id>` wrapping each `run_*`    | vr-vdbms pipeline entry, when `ExecContext::request_id` is set |
//! | `vcd`       | `batch.<query>`, `validate`             | per-query driver |
//! | `storage`   | `flat.put`/`flat.get`/`dfs.put`/`dfs.get` | storage backends |
//! | `fault`     | `retry_backoff`                         | fault-injector recovery paths |
//!
//! ### Metric naming
//!
//! Dotted lowercase names, unit as the last segment where one applies:
//! `stage.decode.nanos` (histogram), `stage.decode.frames` (counter),
//! `degradation.io_retries` (counter),
//! `scheduler.worker_utilization` (gauge), and for the allocator
//! scopes `alloc.<scope>.allocs` / `alloc.<scope>.bytes` (counters)
//! plus `alloc.<scope>.peak_bytes` (max-merged gauge).

pub mod alloc;
pub mod folded;
pub mod metrics;
pub mod qlog;
pub mod serve;
pub mod slo;
pub mod trace;

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
        assert_eq!(super::json_escape("plain"), "plain");
    }
}
