//! Span-based tracer with a chrome-trace (`trace_event` JSON)
//! exporter.
//!
//! A [`Span`] records a Begin event when created and an End event when
//! dropped, carrying a monotonic timestamp (nanoseconds since the
//! tracer epoch), a per-thread track id, a unique span id, and the
//! parent span id from a thread-local span stack — enough for
//! `chrome://tracing` / Perfetto to reconstruct the nesting.
//!
//! Cost model:
//!
//! * compiled out — with the `obs` feature disabled, [`enabled`] is a
//!   compile-time `false`, so every call site's span construction is
//!   dead-code-eliminated;
//! * disabled at runtime (the default) — one relaxed atomic load per
//!   call site, no allocation, no lock ([`span_dyn`] takes a closure so
//!   dynamic names are never even built);
//! * enabled — events append to a global mutex-guarded buffer, capped
//!   at [`MAX_EVENTS`] (overflow increments a drop counter rather than
//!   growing without bound).
//!
//! Timestamps exist **only** in exporter output: nothing downstream of
//! a query reads them, so enabling tracing cannot perturb query
//! results (the obs-gate CI stage asserts this byte-for-byte).

use std::cell::{Cell, RefCell};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::sync::Mutex;

/// Default cap on buffered events (~2M); beyond it events are counted
/// as dropped instead of buffered. At ~100 bytes/event this bounds the
/// tracer's memory to ~200 MB worst case.
pub const MAX_EVENTS: usize = 1 << 21;

static EVENT_CAP: AtomicUsize = AtomicUsize::new(MAX_EVENTS);
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Stable per-thread track id, assigned on first span.
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Open-span stack for parent links.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Begin/End phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span entry (`"ph": "B"`).
    Begin,
    /// Span exit (`"ph": "E"`).
    End,
}

/// One buffered trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (e.g. `"decode"`, `"instance.q1.3"`).
    pub name: String,
    /// Span category (e.g. `"pipeline"`, `"scheduler"`).
    pub cat: &'static str,
    /// Begin or End.
    pub phase: Phase,
    /// Nanoseconds since the tracer epoch (monotonic).
    pub nanos: u64,
    /// Track id of the recording thread.
    pub tid: u64,
    /// Unique span id.
    pub span: u64,
    /// Enclosing span id on the same thread, if any (Begin only).
    pub parent: Option<u64>,
}

/// Whether tracing is live. With the `obs` feature off this is a
/// compile-time `false` and call sites vanish entirely.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "obs") && ENABLED.load(Ordering::Relaxed)
}

/// Turn the tracer on or off. Enabling pins the epoch on first use so
/// all timestamps share one origin. A no-op without the `obs` feature.
pub fn set_enabled(on: bool) {
    if cfg!(feature = "obs") {
        if on {
            EPOCH.get_or_init(Instant::now);
        }
        ENABLED.store(on, Ordering::Relaxed);
    }
}

fn now_nanos() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Override the event cap (tests and memory-constrained embedders).
/// The cap applies to future [`record`] calls only; already-buffered
/// events are never discarded.
pub fn set_event_cap(cap: usize) {
    EVENT_CAP.store(cap, Ordering::Relaxed);
}

fn record(event: TraceEvent) {
    let mut events = EVENTS.lock();
    if events.len() < EVENT_CAP.load(Ordering::Relaxed) {
        events.push(event);
    } else {
        // Not silent: the drop is visible both in the chrome-trace
        // `otherData` footer and as a registry counter on `/metrics`.
        DROPPED.fetch_add(1, Ordering::Relaxed);
        super::metrics::counter("obs.spans_dropped").inc();
    }
}

/// RAII span guard: Begin on construction, End on drop. Inert (and
/// free) when tracing is disabled.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span(Option<SpanInner>);

struct SpanInner {
    name: String,
    cat: &'static str,
    id: u64,
    tid: u64,
}

/// Open a span with a static name. The common, allocation-light call
/// site form: `let _span = trace::span("pipeline", "decode");`
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    span_dyn(cat, || name.to_string())
}

/// Open a span whose name is built lazily — the closure only runs when
/// tracing is enabled, so dynamic names (query labels, instance
/// indices) cost nothing on the disabled path.
#[inline]
pub fn span_dyn(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span(None);
    }
    let name = name();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = current_tid();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    record(TraceEvent {
        name: name.clone(),
        cat,
        phase: Phase::Begin,
        nanos: now_nanos(),
        tid,
        span: id,
        parent,
    });
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span(Some(SpanInner { name, cat, id, tid }))
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&inner.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (e.g. a guard moved across a
                    // catch_unwind boundary): remove just this span.
                    stack.retain(|&id| id != inner.id);
                }
            });
            // The End event reuses the opening thread's track id so
            // B/E pairs stay balanced per track even if the guard is
            // dropped on another thread.
            record(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                phase: Phase::End,
                nanos: now_nanos(),
                tid: inner.tid,
                span: inner.id,
                parent: None,
            });
        }
    }
}

/// Number of currently buffered events.
pub fn buffered() -> usize {
    EVENTS.lock().len()
}

/// Events discarded because the buffer hit [`MAX_EVENTS`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Take every buffered event, leaving the buffer empty.
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock())
}

/// Copy the buffered events without draining them (exporters that
/// must coexist — chrome trace and folded stacks — both read this).
pub fn events() -> Vec<TraceEvent> {
    EVENTS.lock().clone()
}

/// Serialises tests — across this crate's modules — that enable the
/// process-global tracer.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialize the buffered events as a chrome-trace (`trace_event`)
/// JSON document without draining them. Loadable in `chrome://tracing`
/// and Perfetto. Returns the number of events written.
pub fn write_chrome_trace(w: &mut dyn std::io::Write) -> std::io::Result<usize> {
    let events = EVENTS.lock().clone();
    w.write_all(b"{\"traceEvents\": [\n")?;
    for (i, e) in events.iter().enumerate() {
        let ph = match e.phase {
            Phase::Begin => "B",
            Phase::End => "E",
        };
        let micros = e.nanos as f64 / 1_000.0;
        write!(
            w,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{ph}\", \
             \"ts\": {micros:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"span\": {}",
            super::json_escape(&e.name),
            super::json_escape(e.cat),
            e.tid,
            e.span,
        )?;
        if let Some(parent) = e.parent {
            write!(w, ", \"parent\": {parent}")?;
        }
        w.write_all(b"}}")?;
        w.write_all(if i + 1 == events.len() { b"\n" } else { b",\n" })?;
    }
    write!(w, "], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"dropped\": {}}}}}\n", dropped())?;
    Ok(events.len())
}

/// Write the chrome-trace profile to `path`; returns the event count.
pub fn save(path: &str) -> std::io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    let n = write_chrome_trace(&mut out)?;
    out.flush()?;
    Ok(n)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; tests that flip it on must not
    // interleave — they share `super::TEST_LOCK` with the folded
    // exporter's tests. (Other crates' tests never enable tracing.)

    fn with_tracer<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock();
        drain();
        set_enabled(true);
        let result = f();
        set_enabled(false);
        drain();
        result
    }

    #[test]
    fn spans_nest_and_balance() {
        let events = with_tracer(|| {
            {
                let _outer = span("test", "outer");
                {
                    let _inner = span("test", "inner");
                }
                let _sibling = span_dyn("test", || format!("sibling{}", 1));
            }
            drain()
        });
        assert_eq!(events.len(), 6);
        let begins: Vec<&TraceEvent> =
            events.iter().filter(|e| e.phase == Phase::Begin).collect();
        let ends: Vec<&TraceEvent> = events.iter().filter(|e| e.phase == Phase::End).collect();
        assert_eq!(begins.len(), 3);
        assert_eq!(ends.len(), 3);
        let outer = begins.iter().find(|e| e.name == "outer").unwrap();
        let inner = begins.iter().find(|e| e.name == "inner").unwrap();
        let sibling = begins.iter().find(|e| e.name == "sibling1").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.span));
        assert_eq!(sibling.parent, Some(outer.span));
        // Every Begin has a matching End with the same span id, and the
        // End's timestamp is not earlier than the Begin's.
        for b in &begins {
            let e = ends.iter().find(|e| e.span == b.span).unwrap();
            assert_eq!(e.name, b.name);
            assert_eq!(e.tid, b.tid);
            assert!(e.nanos >= b.nanos);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_dynamic_names() {
        let _guard = TEST_LOCK.lock();
        drain();
        set_enabled(false);
        let mut built = false;
        {
            let _span = span_dyn("test", || {
                built = true;
                "never".to_string()
            });
        }
        assert!(!built, "dynamic span names must not be built while disabled");
        assert_eq!(buffered(), 0);
    }

    #[test]
    fn threads_get_distinct_track_ids_and_stay_balanced() {
        let events = with_tracer(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _outer = span("test", "worker");
                        let _inner = span("test", "step");
                    });
                }
            });
            drain()
        });
        assert_eq!(events.len(), 16);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
        // Per-track stack balance: replaying each track's events must
        // push/pop cleanly and end empty.
        for tid in tids {
            let mut stack: Vec<u64> = Vec::new();
            for e in events.iter().filter(|e| e.tid == tid) {
                match e.phase {
                    Phase::Begin => stack.push(e.span),
                    Phase::End => assert_eq!(stack.pop(), Some(e.span)),
                }
            }
            assert!(stack.is_empty());
        }
    }

    #[test]
    fn event_cap_overflow_is_counted_not_silent() {
        let _guard = TEST_LOCK.lock();
        drain();
        set_enabled(true);
        set_event_cap(4);
        let dropped_before = dropped();
        let metric = crate::obs::metrics::counter("obs.spans_dropped");
        let metric_before = metric.get();
        for i in 0..4 {
            let _s = span_dyn("test", || format!("cap{i}"));
        }
        set_event_cap(MAX_EVENTS);
        set_enabled(false);
        let events = drain();
        // 4 spans produce 8 events; a cap of 4 buffers the first 4 and
        // drops the rest — visibly, in both the static counter (the
        // chrome-trace footer) and the metrics registry (`/metrics`).
        assert_eq!(events.len(), 4);
        assert_eq!(dropped() - dropped_before, 4);
        assert_eq!(metric.get() - metric_before, 4);
    }

    #[test]
    fn chrome_trace_export_is_well_formed() {
        let json = with_tracer(|| {
            {
                let _span = span("test", "exported \"quoted\"");
            }
            let mut buf = Vec::new();
            let n = write_chrome_trace(&mut buf).unwrap();
            assert_eq!(n, 2);
            String::from_utf8(buf).unwrap()
        });
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("exported \\\"quoted\\\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
