//! Collapsed-stacks ("folded") export of the span tracer's events —
//! the input format of standard flamegraph tooling
//! (`flamegraph.pl`, inferno, speedscope's folded importer).
//!
//! Each completed span contributes its **self time** (total duration
//! minus the summed durations of its direct children) to one output
//! line of the form
//!
//! ```text
//! root;child;grandchild <self-nanos>
//! ```
//!
//! where the stack is the span's ancestor chain (root first), joined
//! with `;`. Identical stacks aggregate, and lines render in sorted
//! order so the artifact is deterministic for a deterministic trace.
//!
//! The folding enforces the *self-time invariant*: spans are properly
//! nested per thread under a monotonic clock, so the children of a
//! span can never account for more time than the span itself. A trace
//! that violates this (clock skew, unbalanced guards) fails the fold
//! with a diagnostic instead of silently clamping — the CI obs-gate
//! leg runs this check on a real trace every build.

use std::collections::BTreeMap;

use super::trace::{Phase, TraceEvent};

/// Aggregated folded stacks, ready to render or save.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    /// `stack -> summed self-time nanos`, sorted by stack string.
    pub stacks: BTreeMap<String, u64>,
    /// Spans skipped because they never closed (e.g. the buffer was
    /// exported mid-span).
    pub unclosed: usize,
}

struct OpenSpan {
    begin_nanos: u64,
    parent: Option<u64>,
    /// Sum of direct children's total durations.
    child_nanos: u64,
}

/// Fold a buffered event stream into collapsed stacks.
///
/// Returns `Err` when a span's children outlast the span itself (the
/// self-time invariant) or when the stream is structurally broken (an
/// End without a matching Begin).
pub fn fold(events: &[TraceEvent]) -> Result<FoldedStacks, String> {
    // Open spans by span id. Events arrive in buffer order, which is
    // begin-before-end per span; parent links let the stack be
    // reconstructed without relying on per-thread ordering.
    let mut open: BTreeMap<u64, OpenSpan> = BTreeMap::new();
    // Closed ancestors may still be needed for stack strings of spans
    // that close later (a child guard outliving its parent's buffer
    // entry is impossible for RAII guards, but names are kept for the
    // whole fold anyway — ids are unique per trace).
    let mut names: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
    let mut out = FoldedStacks::default();

    for e in events {
        match e.phase {
            Phase::Begin => {
                names.insert(e.span, (e.name.clone(), e.parent));
                open.insert(
                    e.span,
                    OpenSpan { begin_nanos: e.nanos, parent: e.parent, child_nanos: 0 },
                );
            }
            Phase::End => {
                let span = open
                    .remove(&e.span)
                    .ok_or_else(|| format!("span {} ({:?}) ends without a begin", e.span, e.name))?;
                let total = e.nanos.saturating_sub(span.begin_nanos);
                if span.child_nanos > total {
                    return Err(format!(
                        "self-time invariant violated: span {} ({:?}) ran {}ns but its \
                         children sum to {}ns",
                        e.span, e.name, total, span.child_nanos
                    ));
                }
                let self_nanos = total - span.child_nanos;
                if let Some(parent) = span.parent {
                    if let Some(p) = open.get_mut(&parent) {
                        p.child_nanos += total;
                    }
                }
                let stack = stack_string(&e.name, span.parent, &names);
                *out.stacks.entry(stack).or_insert(0) += self_nanos;
            }
        }
    }
    out.unclosed = open.len();
    Ok(out)
}

/// Build `root;...;name` from the parent chain.
fn stack_string(
    name: &str,
    mut parent: Option<u64>,
    names: &BTreeMap<u64, (String, Option<u64>)>,
) -> String {
    let mut chain: Vec<&str> = vec![name];
    while let Some(id) = parent {
        match names.get(&id) {
            Some((n, p)) => {
                chain.push(n);
                parent = *p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain.join(";")
}

impl FoldedStacks {
    /// Render as `stack count` lines, one per aggregated stack, sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (stack, nanos) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// Total self time across every stack — equals the summed total
    /// duration of all root spans, which callers can cross-check
    /// against wall time.
    pub fn total_nanos(&self) -> u64 {
        self.stacks.values().sum()
    }
}

/// Fold the currently buffered trace events (without draining them)
/// and write the collapsed stacks to `path`. Returns the number of
/// distinct stacks written.
pub fn save(path: &str) -> Result<usize, String> {
    let folded = fold(&super::trace::events())?;
    std::fs::write(path, folded.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(folded.stacks.len())
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, phase: Phase, nanos: u64, span: u64, parent: Option<u64>) -> TraceEvent {
        TraceEvent { name: name.to_string(), cat: "test", phase, nanos, tid: 1, span, parent }
    }

    #[test]
    fn folds_nested_spans_into_self_time_stacks() {
        // outer [0, 100] containing inner [10, 40]: outer self = 70.
        let events = vec![
            ev("outer", Phase::Begin, 0, 1, None),
            ev("inner", Phase::Begin, 10, 2, Some(1)),
            ev("inner", Phase::End, 40, 2, None),
            ev("outer", Phase::End, 100, 1, None),
        ];
        let folded = fold(&events).unwrap();
        assert_eq!(folded.stacks.get("outer"), Some(&70));
        assert_eq!(folded.stacks.get("outer;inner"), Some(&30));
        assert_eq!(folded.total_nanos(), 100);
        assert_eq!(folded.unclosed, 0);
        let rendered = folded.render();
        assert_eq!(rendered, "outer 70\nouter;inner 30\n");
    }

    #[test]
    fn identical_stacks_aggregate() {
        let events = vec![
            ev("root", Phase::Begin, 0, 1, None),
            ev("step", Phase::Begin, 0, 2, Some(1)),
            ev("step", Phase::End, 10, 2, None),
            ev("step", Phase::Begin, 20, 3, Some(1)),
            ev("step", Phase::End, 50, 3, None),
            ev("root", Phase::End, 60, 1, None),
        ];
        let folded = fold(&events).unwrap();
        assert_eq!(folded.stacks.get("root;step"), Some(&40));
        assert_eq!(folded.stacks.get("root"), Some(&20));
    }

    #[test]
    fn self_time_is_never_negative_on_real_traces() {
        // Fold a real trace produced by the span tracer and assert the
        // invariant held (fold errors exactly when a computed self
        // time would go negative).
        use crate::obs::trace;
        let events = {
            let _guard = trace::TEST_LOCK.lock();
            trace::drain();
            trace::set_enabled(true);
            {
                let _a = trace::span("test", "folded_root");
                for _ in 0..3 {
                    let _b = trace::span("test", "folded_leaf");
                    std::hint::black_box(0u64);
                }
            }
            trace::set_enabled(false);
            trace::drain()
        };
        let folded = fold(&events).expect("self-time invariant must hold on tracer output");
        assert!(folded.stacks.contains_key("folded_root;folded_leaf"));
        let root_total: u64 = folded
            .stacks
            .iter()
            .filter(|(k, _)| k.starts_with("folded_root"))
            .map(|(_, v)| v)
            .sum();
        // Summed self times reconstruct the root span's total.
        assert!(root_total > 0);
    }

    #[test]
    fn child_outlasting_parent_fails_the_invariant() {
        let events = vec![
            ev("outer", Phase::Begin, 0, 1, None),
            ev("inner", Phase::Begin, 10, 2, Some(1)),
            ev("inner", Phase::End, 120, 2, None),
            ev("outer", Phase::End, 100, 1, None),
        ];
        let err = fold(&events).unwrap_err();
        assert!(err.contains("self-time invariant"), "unexpected error: {err}");
    }

    #[test]
    fn unclosed_spans_are_counted_not_folded() {
        let events = vec![
            ev("done", Phase::Begin, 0, 1, None),
            ev("done", Phase::End, 10, 1, None),
            ev("open", Phase::Begin, 5, 2, None),
        ];
        let folded = fold(&events).unwrap();
        assert_eq!(folded.unclosed, 1);
        assert_eq!(folded.stacks.len(), 1);
    }
}
