//! Process-global metrics registry: counters, gauges, and fixed-bucket
//! latency histograms with deterministic snapshots.
//!
//! The registry supersedes the ad-hoc `static AtomicU64` clusters that
//! previously lived in `fault::Degradation` and alongside the pipeline
//! stage accounting: every long-lived telemetry value now has a name,
//! lives in one place, and exports through one code path.
//!
//! Design constraints (DESIGN.md, "observability"):
//!
//! * **std-only** — built from `std::sync::atomic` plus the workspace's
//!   own [`crate::sync::RwLock`]; no registry dependencies.
//! * **lock-free hot path** — [`Counter::add`], [`Gauge::set`] and
//!   [`Histogram::observe`] are single relaxed atomic operations on
//!   handles the caller caches (an `Arc`); the registry map is only
//!   locked on first lookup.
//! * **deterministic snapshots** — [`MetricsSnapshot`] stores its
//!   series in `BTreeMap`s, so [`MetricsSnapshot::to_json`] and
//!   [`MetricsSnapshot::to_text`] render in a stable order regardless
//!   of registration order or thread interleaving.
//! * **monotonic registry** — metrics are never unregistered; per-query
//!   deltas are taken with [`MetricsSnapshot::since`] instead of
//!   resetting shared state under concurrent writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::sync::RwLock;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Create a free-standing counter (tests; registry use goes through
    /// [`Registry::counter`]).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Create a free-standing gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value (CAS
    /// loop). High-water marks — peak allocation bytes per scope — are
    /// max-merged rather than last-write-wins, so concurrent scopes
    /// never lower each other's peak.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Upper bounds (inclusive, nanoseconds) of the fixed histogram
/// buckets: a 1–2–5 ladder from 1µs to 10s. Values above the last
/// bound land in a final overflow bucket.
pub const BUCKET_BOUNDS_NANOS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Number of buckets including the trailing overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_NANOS.len() + 1;

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_NANOS`].
///
/// Fixed bounds keep `observe` allocation-free and make snapshots from
/// different processes/runs directly comparable — the same property
/// Prometheus client libraries rely on.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create a free-standing histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation of `nanos`.
    pub fn observe(&self, nanos: u64) {
        let idx = BUCKET_BOUNDS_NANOS.partition_point(|&bound| bound < nanos);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] observation.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state; supports quantile
/// estimation and snapshot subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (nanoseconds).
    pub sum: u64,
    /// Per-bucket observation counts (last entry is the overflow
    /// bucket).
    pub buckets: [u64; BUCKET_COUNT],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { count: 0, sum: 0, buckets: [0; BUCKET_COUNT] }
    }
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of
    /// the bucket containing the target rank. Overflow-bucket hits
    /// report twice the last finite bound.
    ///
    /// Degenerate histograms get exact answers instead of bucket
    /// estimates: an empty histogram reports 0, and a single-sample
    /// histogram reports the sample itself (recoverable as `sum` when
    /// `count == 1`) — so p50/p95/p99 are defined for every histogram
    /// a snapshot can contain, including one-observation `since`
    /// deltas.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 {
            return self.sum;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return BUCKET_BOUNDS_NANOS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1] * 2);
            }
        }
        BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1] * 2
    }

    /// Median estimate (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Bucket-wise difference `self - earlier` (saturating, so a
    /// snapshot pair taken across a registry restart degrades to the
    /// later snapshot instead of wrapping).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(earlier.buckets[i])
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named collection of instruments. One process-global instance is
/// reachable through [`global`]/[`counter`]/[`gauge`]/[`histogram`];
/// tests build private registries to stay isolated.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Point-in-time snapshot of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get or register a counter in the global registry. Callers on hot
/// paths should cache the returned handle (e.g. in a `OnceLock`).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or register a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or register a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Snapshot the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

// ---------------------------------------------------------------------------
// Snapshots and exporters
// ---------------------------------------------------------------------------

/// A deterministic, immutable copy of a registry's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The delta accumulated between `earlier` and `self`: counters and
    /// histograms subtract (a series absent from `earlier` keeps its
    /// full value); gauges are last-write-wins, so the current value is
    /// kept as-is.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| match earlier.histograms.get(k) {
                    Some(e) => (k.clone(), v.since(e)),
                    None => (k.clone(), *v),
                })
                .collect(),
        }
    }

    /// Render as a single deterministic JSON document:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},
    ///  "histograms":{"name":{"count":..,"sum_nanos":..,
    ///    "p50_nanos":..,"p95_nanos":..,"p99_nanos":..,"buckets":[..]}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter().map(|(k, v)| (k, fmt_f64(*v))));
        out.push_str("},\n  \"histograms\": {");
        push_entries(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                (
                    k,
                    format!(
                        "{{\"count\": {}, \"sum_nanos\": {}, \"mean_nanos\": {}, \
                         \"p50_nanos\": {}, \"p95_nanos\": {}, \"p99_nanos\": {}, \
                         \"buckets\": [{}]}}",
                        h.count,
                        h.sum,
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        buckets.join(", ")
                    ),
                )
            }),
        );
        out.push_str("}\n}\n");
        out
    }

    /// Render in the Prometheus text exposition format (version 0.0.4)
    /// — the flavour served by `--serve-metrics` at `/metrics`.
    ///
    /// Instrument names are sanitised to `[a-zA-Z0-9_:]` (dots become
    /// underscores) and prefixed `vr_`; histograms expand to the
    /// conventional cumulative `_bucket{le="..."}` series plus `_sum`
    /// and `_count`. BTreeMap iteration keeps the output
    /// deterministic.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(*v)));
        }
        for (k, h) in &self.histograms {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cumulative += n;
                match BUCKET_BOUNDS_NANOS.get(i) {
                    Some(bound) => out.push_str(&format!(
                        "{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"
                    )),
                    None => out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
                    )),
                }
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Render as flat `name value` lines (one instrument per line,
    /// sorted) — the text flavour for quick diffing and grepping.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {}\n", fmt_f64(*v)));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} count={} mean_nanos={} p50_nanos={} p95_nanos={} p99_nanos={}\n",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out
    }
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, rendered) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&crate::obs::json_escape(k));
        out.push_str("\": ");
        out.push_str(&rendered);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Sanitise a registry name into a legal Prometheus metric name:
/// `vr_` prefix, every character outside `[a-zA-Z0-9_:]` replaced by
/// an underscore.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("vr_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_concurrent_increments_from_scoped_threads() {
        let registry = Registry::new();
        let c = registry.counter("test.concurrent");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        // The handle and a fresh lookup observe the same cell.
        assert_eq!(registry.counter("test.concurrent").get(), 40_000);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new();
        // Exactly on a bound lands in that bound's bucket.
        h.observe(1_000);
        // One over a bound lands in the next bucket.
        h.observe(1_001);
        // Below the first bound lands in bucket 0.
        h.observe(1);
        // Above the last bound lands in the overflow bucket.
        h.observe(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1] + 1);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 2); // 1 and 1_000
        assert_eq!(s.buckets[1], 1); // 1_001 -> (1_000, 2_000]
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 1); // overflow
    }

    #[test]
    fn histogram_quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(500); // bucket 0, bound 1_000
        }
        h.observe(3_000_000); // bucket bound 5_000_000
        let s = h.snapshot();
        assert_eq!(s.p50(), 1_000);
        assert_eq!(s.p95(), 1_000);
        assert_eq!(s.quantile(1.0), 5_000_000);
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn quantiles_on_empty_and_single_sample_histograms_are_defined() {
        // Empty: every quantile is 0.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p95(), 0);
        assert_eq!(empty.p99(), 0);
        // Single sample: every quantile is the sample itself, not the
        // containing bucket's upper bound.
        let h = Histogram::new();
        h.observe(1_500);
        let s = h.snapshot();
        assert_eq!(s.p50(), 1_500);
        assert_eq!(s.p95(), 1_500);
        assert_eq!(s.p99(), 1_500);
        assert_eq!(s.quantile(0.0), 1_500);
        assert_eq!(s.quantile(1.0), 1_500);
        // A since-delta that isolates one observation gets the same
        // exact treatment.
        h.observe(9_000);
        let delta = h.snapshot().since(&s);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.p95(), 9_000);
    }

    #[test]
    fn gauge_set_max_keeps_the_high_water_mark() {
        let g = Gauge::new();
        g.set_max(10.0);
        g.set_max(3.0);
        assert_eq!(g.get(), 10.0);
        g.set_max(12.5);
        assert_eq!(g.get(), 12.5);
        // Plain set still overwrites downwards.
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn prometheus_export_is_wellformed_and_cumulative() {
        let registry = Registry::new();
        registry.counter("a.count").add(2);
        registry.gauge("b.gauge").set(0.5);
        let h = registry.histogram("stage.kernel.nanos");
        h.observe(1_500);
        h.observe(900);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE vr_a_count counter\nvr_a_count 2\n"));
        assert!(text.contains("# TYPE vr_b_gauge gauge\nvr_b_gauge 0.5\n"));
        assert!(text.contains("# TYPE vr_stage_kernel_nanos histogram\n"));
        // Buckets are cumulative: the 2_000 bound has seen both
        // observations, the 1_000 bound only the 900ns one.
        assert!(text.contains("vr_stage_kernel_nanos_bucket{le=\"1000\"} 1\n"));
        assert!(text.contains("vr_stage_kernel_nanos_bucket{le=\"2000\"} 2\n"));
        assert!(text.contains("vr_stage_kernel_nanos_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("vr_stage_kernel_nanos_sum 2400\n"));
        assert!(text.contains("vr_stage_kernel_nanos_count 2\n"));
    }

    #[test]
    fn snapshot_is_deterministic_across_identical_runs_at_four_workers() {
        // Two registries fed by the same 4-thread workload must render
        // byte-identical snapshots regardless of interleaving — the
        // property the determinism CI gate relies on when tracing and
        // metrics are live.
        let run = || {
            let registry = Registry::new();
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let c = registry.counter("work.items");
                    let h = registry.histogram("work.nanos");
                    let g = registry.gauge("work.last");
                    scope.spawn(move || {
                        for i in 0..1_000u64 {
                            c.inc();
                            h.observe((t + 1) * 10_000 + i);
                        }
                        g.set(4.0);
                    });
                }
            });
            registry.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_since_subtracts_counters_and_histograms() {
        let registry = Registry::new();
        let c = registry.counter("delta.count");
        let h = registry.histogram("delta.nanos");
        c.add(5);
        h.observe(100);
        let before = registry.snapshot();
        c.add(7);
        h.observe(200);
        h.observe(2_000_000_000);
        let delta = registry.snapshot().since(&before);
        assert_eq!(delta.counters["delta.count"], 7);
        assert_eq!(delta.histograms["delta.nanos"].count, 2);
        // A series born after `before` keeps its full value.
        registry.counter("delta.late").add(3);
        let delta2 = registry.snapshot().since(&before);
        assert_eq!(delta2.counters["delta.late"], 3);
    }

    #[test]
    fn exporters_render_all_instrument_kinds() {
        let registry = Registry::new();
        registry.counter("a.count").add(2);
        registry.gauge("b.gauge").set(0.5);
        registry.histogram("c.nanos").observe(1_500);
        let snap = registry.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"a.count\": 2"));
        assert!(json.contains("\"b.gauge\": 0.5"));
        assert!(json.contains("\"count\": 1"));
        let text = snap.to_text();
        assert!(text.contains("counter a.count 2"));
        assert!(text.contains("gauge b.gauge 0.5"));
        assert!(text.contains("histogram c.nanos count=1"));
    }
}
