//! Counting [`GlobalAlloc`] wrapper with per-thread scoped accounting.
//!
//! The second observability layer needs a memory story: EXPLAIN
//! ANALYZE annotates every plan node with allocation counts, bytes,
//! and a peak (high-water) figure, and those numbers have to come from
//! the allocator itself — not from guesses about buffer sizes. This
//! module wraps [`std::alloc::System`] in a counting shim and installs
//! it as the global allocator (under the `obs` feature, like the rest
//! of the telemetry surface).
//!
//! Cost model, mirroring `obs::trace`:
//!
//! * **feature off** — the wrapper is not installed; allocation goes
//!   straight to `System`.
//! * **tracking off (the default)** — exactly one relaxed atomic add
//!   per allocation (the process-total counter). No thread-local
//!   access, no branch beyond the flag load.
//! * **tracking on** (`VR_ALLOC_TRACK=1` or [`set_tracking`]) —
//!   additionally maintains per-thread counters (allocations, bytes,
//!   live bytes, peak live bytes) in const-initialised `Cell`s, which
//!   [`ScopeGuard`] brackets into per-scope deltas. The accounting
//!   path allocates nothing itself, so it cannot recurse.
//!
//! Scopes nest: a guard saves the thread's running peak on entry,
//! re-bases it at the current live size, and max-merges it back on
//! exit, so an inner scope's high-water mark is charged to every
//! enclosing scope as well. All accounting is per-thread; a scope
//! only observes allocations made by the thread it lives on — which
//! is exactly the pipeline's situation, where each stage's measured
//! region runs on one thread at a time.
//!
//! Like every other obs path, the numbers here are telemetry only:
//! nothing downstream of a query reads them, so enabling tracking
//! cannot perturb results (the obs-gate CI stage pins this).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Process-wide allocation count (updated on every `alloc`, tracking
/// on or off — the "one relaxed atomic" of the disabled path).
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Runtime gate for the per-thread accounting below.
static TRACK: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Allocations made by this thread since it started.
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by this thread's allocations.
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Live (allocated minus freed) bytes attributed to this thread.
    static TL_CURRENT: Cell<u64> = const { Cell::new(0) };
    /// High-water mark of `TL_CURRENT` since the innermost open scope
    /// re-based it (or since thread start).
    static TL_PEAK: Cell<u64> = const { Cell::new(0) };
}

/// The counting allocator. Installed as `#[global_allocator]` when the
/// `obs` feature is on; constructible standalone for tests.
pub struct CountingAlloc;

#[cfg(feature = "obs")]
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// Whether per-thread accounting is live. Compile-time `false` without
/// the `obs` feature.
#[inline]
pub fn tracking_enabled() -> bool {
    cfg!(feature = "obs") && TRACK.load(Ordering::Relaxed)
}

/// Turn per-thread accounting on or off. A no-op without the `obs`
/// feature.
pub fn set_tracking(on: bool) {
    if cfg!(feature = "obs") {
        TRACK.store(on, Ordering::Relaxed);
    }
}

/// Enable tracking if the `VR_ALLOC_TRACK` environment variable is set
/// to anything other than `0` or the empty string.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("VR_ALLOC_TRACK") {
        if !v.is_empty() && v != "0" {
            set_tracking(true);
        }
    }
}

/// Process-wide allocation count since start.
pub fn total_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

#[inline]
fn note_alloc(size: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    if tracking_enabled() {
        let size = size as u64;
        TL_ALLOCS.with(|c| c.set(c.get() + 1));
        TL_BYTES.with(|c| c.set(c.get() + size));
        let live = TL_CURRENT.with(|c| {
            let v = c.get() + size;
            c.set(v);
            v
        });
        TL_PEAK.with(|c| {
            if live > c.get() {
                c.set(live);
            }
        });
    }
}

#[inline]
fn note_dealloc(size: usize) {
    if tracking_enabled() {
        TL_CURRENT.with(|c| c.set(c.get().saturating_sub(size as u64)));
    }
}

// SAFETY: every method delegates the actual allocation to `System`
// unchanged; the bookkeeping around it touches only atomics and
// const-initialised (destructor-free) thread-local `Cell`s, and never
// allocates, so it cannot recurse into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Accounted as a fresh allocation of the new size replacing
            // the old block, so live-byte tracking stays balanced.
            note_alloc(new_size);
            note_dealloc(layout.size());
        }
        p
    }
}

/// Allocation activity observed by one [`ScopeGuard`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations made on the scope's thread while it was open.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// High-water mark of live bytes *above the scope's entry level* —
    /// the scope's own contribution to peak memory.
    pub peak_bytes: u64,
}

impl AllocDelta {
    /// Merge another delta into this one: counts add, peaks take the
    /// max (two sequential scopes cannot be live at once).
    pub fn merge(&mut self, other: &AllocDelta) {
        self.allocs += other.allocs;
        self.bytes += other.bytes;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }
}

/// RAII bracket over a region of thread-local allocation accounting.
/// Construct with [`ScopeGuard::begin`], read the delta with
/// [`ScopeGuard::finish`]. Inert (all-zero delta) when tracking is
/// off.
#[must_use = "a scope guard measures the region it is alive for"]
pub struct ScopeGuard {
    active: bool,
    start_allocs: u64,
    start_bytes: u64,
    entry_current: u64,
    saved_peak: u64,
}

impl ScopeGuard {
    /// Open a scope on the current thread.
    #[inline]
    pub fn begin() -> Self {
        if !tracking_enabled() {
            return Self {
                active: false,
                start_allocs: 0,
                start_bytes: 0,
                entry_current: 0,
                saved_peak: 0,
            };
        }
        let entry_current = TL_CURRENT.with(Cell::get);
        let saved_peak = TL_PEAK.with(|c| {
            let saved = c.get();
            // Re-base the running peak at the entry level so the scope
            // measures only its own high-water contribution.
            c.set(entry_current);
            saved
        });
        Self {
            active: true,
            start_allocs: TL_ALLOCS.with(Cell::get),
            start_bytes: TL_BYTES.with(Cell::get),
            entry_current,
            saved_peak,
        }
    }

    /// Close the scope and return what it observed.
    pub fn finish(mut self) -> AllocDelta {
        self.close()
    }

    fn close(&mut self) -> AllocDelta {
        if !self.active {
            return AllocDelta::default();
        }
        self.active = false;
        let peak = TL_PEAK.with(Cell::get);
        // Propagate the scope's peak outward: the enclosing scope's
        // high-water mark must not be lowered by this re-basing.
        TL_PEAK.with(|c| c.set(self.saved_peak.max(peak)));
        AllocDelta {
            allocs: TL_ALLOCS.with(Cell::get).saturating_sub(self.start_allocs),
            bytes: TL_BYTES.with(Cell::get).saturating_sub(self.start_bytes),
            peak_bytes: peak.saturating_sub(self.entry_current),
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        // Restore the enclosing scope's peak even when the delta is
        // never read (early return, panic unwind).
        self.close();
    }
}

/// Run `f` under a scope and return its result with the delta.
#[inline]
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocDelta) {
    let guard = ScopeGuard::begin();
    let value = f();
    (value, guard.finish())
}

/// Record a scope's delta into the global registry under
/// `alloc.<scope>.allocs` / `alloc.<scope>.bytes` (counters) and
/// `alloc.<scope>.peak_bytes` (max-merged gauge). Call sites on hot
/// paths should cache handles instead; this is for once-per-instance
/// call sites like the VCD scheduler.
pub fn record_scope(scope: &str, delta: &AllocDelta) {
    if delta.allocs == 0 && delta.bytes == 0 && delta.peak_bytes == 0 {
        return;
    }
    let registry = super::metrics::global();
    registry.counter(&format!("alloc.{scope}.allocs")).add(delta.allocs);
    registry.counter(&format!("alloc.{scope}.bytes")).add(delta.bytes);
    registry.gauge(&format!("alloc.{scope}.peak_bytes")).set_max(delta.peak_bytes as f64);
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    /// Tracking is process-global; tests that flip it on serialise.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_tracking<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock();
        set_tracking(true);
        let result = f();
        set_tracking(false);
        result
    }

    #[test]
    fn total_alloc_counter_advances() {
        let before = total_allocs();
        let v: Vec<u64> = Vec::with_capacity(32);
        drop(v);
        // Other test threads may allocate concurrently, so only the
        // direction is asserted.
        assert!(total_allocs() > before, "allocation did not tick the process counter");
    }

    #[test]
    fn scope_observes_allocations_and_peak() {
        with_tracking(|| {
            let (_, delta) = measure(|| {
                let a: Vec<u8> = Vec::with_capacity(64 * 1024);
                drop(a);
                let b: Vec<u8> = Vec::with_capacity(16 * 1024);
                b
            });
            assert!(delta.allocs >= 2, "expected both Vec allocations, saw {}", delta.allocs);
            assert!(delta.bytes >= 80 * 1024, "expected >= 80 KiB, saw {}", delta.bytes);
            // The 64 KiB buffer was freed before the 16 KiB one was
            // made, so the scope's high water is the larger buffer.
            assert!(delta.peak_bytes >= 64 * 1024);
            assert!(delta.peak_bytes < 96 * 1024);
        });
    }

    #[test]
    fn nested_scopes_charge_inner_peaks_to_outer_scopes() {
        with_tracking(|| {
            let (inner_delta, outer_delta) = {
                let outer = ScopeGuard::begin();
                let (_, inner_delta) = measure(|| {
                    let big: Vec<u8> = Vec::with_capacity(128 * 1024);
                    drop(big);
                });
                (inner_delta, outer.finish())
            };
            assert!(inner_delta.peak_bytes >= 128 * 1024);
            // The outer scope saw the same high water even though the
            // buffer was gone before the inner scope closed.
            assert!(outer_delta.peak_bytes >= inner_delta.peak_bytes);
            assert!(outer_delta.allocs >= inner_delta.allocs);
        });
    }

    #[test]
    fn identical_workloads_report_identical_alloc_counts() {
        // The allocator-accounting determinism contract: the same
        // workload on the same thread reports the same counts. (The
        // VR_WORKERS=1 pipeline variant lives in vr-vdbms.)
        with_tracking(|| {
            let workload = || {
                measure(|| {
                    let mut v: Vec<Vec<u8>> = Vec::new();
                    for i in 0..50 {
                        v.push(vec![0u8; 256 + i]);
                    }
                    v.iter().map(|b| b.len() as u64).sum::<u64>()
                })
            };
            let (sum_a, delta_a) = workload();
            let (sum_b, delta_b) = workload();
            assert_eq!(sum_a, sum_b);
            assert_eq!(delta_a, delta_b);
        });
    }

    #[test]
    fn disabled_tracking_reports_zero_deltas() {
        let _guard = TEST_LOCK.lock();
        set_tracking(false);
        let (_, delta) = measure(|| vec![0u8; 4096]);
        assert_eq!(delta, AllocDelta::default());
    }
}
