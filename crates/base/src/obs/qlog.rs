//! Structured query log: one JSON-lines record per served request.
//!
//! Observability layer 3's durable surface. The query server mints a
//! [`RequestCtx`] per `EXEC` line and, once the request settles (ok,
//! cancelled, shed, or errored), appends a [`RequestRecord`] to the
//! process's [`QueryLog`]. Records have a **fixed field order** and
//! every field is always present (`null` where absent), so two
//! identical seeded runs produce byte-identical logs modulo the two
//! timing fields (`queue_wait_us`, `latency_us`) and any slow-query
//! exemplars — the obs-gate CI leg asserts exactly that.
//!
//! Two ids per record, because records are appended at *completion*
//! time while request ids are minted at *arrival* time:
//!
//! * `seq` — assigned under the append lock; strictly increasing in
//!   file order (what `trace_check --qlog` validates);
//! * `req` — the arrival-minted id threaded through admission, the
//!   optimizer, and the span tracer (`request.req-NNNNNN.<tenant>`
//!   lanes in chrome-trace); unique but not ordered in the file.
//!
//! A bounded in-memory ring of the most recent rendered lines backs
//! the live `/requests` view, so the log is inspectable even when no
//! `--qlog-out` file was configured.

use std::collections::VecDeque;
use std::io::Write;
use std::time::Duration;

use crate::admission::Priority;
use crate::sync::Mutex;

/// Most recent rendered records retained for the `/requests` view.
const RING_CAP: usize = 256;

/// Identity of one in-flight request, minted at arrival and threaded
/// through admission, planning, and execution.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Deterministic per-server arrival sequence number (1-based).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Declared priority class.
    pub priority: Priority,
}

impl RequestCtx {
    /// Stable short label (`req-000042`) used in span names and logs.
    pub fn label(&self) -> String {
        format!("req-{:06}", self.id)
    }
}

/// How a request settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed and returned rows/frames.
    Ok,
    /// Admitted but cancelled by its deadline mid-flight.
    Cancelled,
    /// Refused at admission.
    Shed,
    /// Admitted but failed during execution.
    Err,
}

impl Outcome {
    /// Stable lower-snake label used in the wire record.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Cancelled => "cancelled",
            Outcome::Shed => "shed",
            Outcome::Err => "err",
        }
    }
}

/// One settled request, ready to render. `seq` is assigned by
/// [`QueryLog::append`]; everything else is filled by the server.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Arrival-minted request id ([`RequestCtx::id`]).
    pub req: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Declared priority class.
    pub priority: Priority,
    /// Query label (`Q1`, `S2`, ...).
    pub query: String,
    /// Engine that served it (`batch`, `streaming`, `semantic`, ...).
    pub engine: String,
    /// How the request settled.
    pub outcome: Outcome,
    /// Shed reason label; `Some` iff `outcome == Shed`.
    pub shed_reason: Option<&'static str>,
    /// Whether admission degraded the request (reduced fan-out).
    pub degraded: bool,
    /// `Some("index")` / `Some("rescan")` for completed requests that
    /// took a route decision; `None` otherwise.
    pub route: Option<&'static str>,
    /// Time spent blocked in the admission queue.
    pub queue_wait: Duration,
    /// Wall time from arrival to settlement.
    pub latency: Duration,
    /// Client-declared deadline, if any.
    pub deadline: Option<Duration>,
    /// FNV-1a digest of the chosen plan's rendered text (or the
    /// optimizer decision for semantic queries); empty when no plan
    /// was reached (sheds).
    pub plan_digest: String,
    /// Full `EXPLAIN ANALYZE` text, captured only when the request is
    /// slower than the configured slow-query threshold.
    pub exemplar: Option<String>,
}

/// 64-bit FNV-1a over a string — the plan-digest hash. Deterministic,
/// dependency-free, and stable across runs/platforms.
pub fn fnv64(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in data.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// [`fnv64`] rendered as the fixed-width hex form used in records.
pub fn fnv64_hex(data: &str) -> String {
    format!("{:016x}", fnv64(data))
}

struct Inner {
    seq: u64,
    writer: Option<std::io::BufWriter<std::fs::File>>,
    ring: VecDeque<String>,
}

/// Append-only query log: an optional JSONL file plus the in-memory
/// ring behind `/requests`. One instance per server.
pub struct QueryLog {
    slow: Option<Duration>,
    inner: Mutex<Inner>,
}

impl QueryLog {
    /// Open a log. `path` is the JSONL sink (`None` = ring only);
    /// `slow` is the slow-query threshold (`None` disables exemplars).
    pub fn open(path: Option<&str>, slow: Option<Duration>) -> std::io::Result<Self> {
        let writer = match path {
            Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p)?)),
            None => None,
        };
        Ok(Self {
            slow,
            inner: Mutex::new(Inner { seq: 0, writer, ring: VecDeque::new() }),
        })
    }

    /// The configured slow-query threshold, if any.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow
    }

    /// Assign the next `seq`, render, and append one record. The file
    /// write is flushed per record so crash-truncated logs still end
    /// on a line boundary. Returns the assigned `seq`.
    pub fn append(&self, rec: &RequestRecord) -> u64 {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let line = self.render(seq, rec);
        if let Some(w) = inner.writer.as_mut() {
            // Log I/O must never fail a query: drop the line on error.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        if inner.ring.len() == RING_CAP {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line);
        seq
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Whether any record has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained tail of the log as JSONL — the `/requests` view.
    pub fn recent_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for line in &inner.ring {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Render one record with the fixed field order. Every field is
    /// always present; absent values render as `null`.
    fn render(&self, seq: u64, r: &RequestRecord) -> String {
        let slow_us = self.slow.map_or(0, |d| d.as_micros() as u64);
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"seq\": {seq}, \"req\": {}, \"tenant\": \"{}\", \"priority\": \"{}\", \
             \"query\": \"{}\", \"engine\": \"{}\", \"outcome\": \"{}\", ",
            r.req,
            super::json_escape(&r.tenant),
            r.priority,
            super::json_escape(&r.query),
            super::json_escape(&r.engine),
            r.outcome.label(),
        ));
        match r.shed_reason {
            Some(reason) => out.push_str(&format!("\"shed_reason\": \"{reason}\", ")),
            None => out.push_str("\"shed_reason\": null, "),
        }
        out.push_str(&format!("\"degraded\": {}, ", r.degraded));
        match r.route {
            Some(route) => out.push_str(&format!("\"route\": \"{route}\", ")),
            None => out.push_str("\"route\": null, "),
        }
        out.push_str(&format!(
            "\"queue_wait_us\": {}, \"latency_us\": {}, ",
            r.queue_wait.as_micros() as u64,
            r.latency.as_micros() as u64,
        ));
        match r.deadline {
            Some(d) => out.push_str(&format!("\"deadline_ms\": {}, ", d.as_millis() as u64)),
            None => out.push_str("\"deadline_ms\": null, "),
        }
        out.push_str(&format!(
            "\"plan_digest\": \"{}\", \"slow_us\": {slow_us}, ",
            super::json_escape(&r.plan_digest)
        ));
        match &r.exemplar {
            Some(text) => {
                out.push_str(&format!("\"exemplar\": \"{}\"}}", super::json_escape(text)))
            }
            None => out.push_str("\"exemplar\": null}"),
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req: u64) -> RequestRecord {
        RequestRecord {
            req,
            tenant: "gold".into(),
            priority: Priority::High,
            query: "Q1".into(),
            engine: "batch".into(),
            outcome: Outcome::Ok,
            shed_reason: None,
            degraded: false,
            route: Some("rescan"),
            queue_wait: Duration::from_micros(12),
            latency: Duration::from_micros(3400),
            deadline: Some(Duration::from_millis(3000)),
            plan_digest: fnv64_hex("plan"),
            exemplar: None,
        }
    }

    #[test]
    fn records_render_with_fixed_field_order_and_explicit_nulls() {
        let log = QueryLog::open(None, None).unwrap();
        log.append(&record(1));
        let mut shed = record(2);
        shed.outcome = Outcome::Shed;
        shed.shed_reason = Some("saturated");
        shed.route = None;
        shed.plan_digest = String::new();
        shed.deadline = None;
        log.append(&shed);
        let lines: Vec<String> = log.recent_jsonl().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(
            "{\"seq\": 1, \"req\": 1, \"tenant\": \"gold\", \"priority\": \"high\", \
             \"query\": \"Q1\", \"engine\": \"batch\", \"outcome\": \"ok\", \
             \"shed_reason\": null, \"degraded\": false, \"route\": \"rescan\", "
        ));
        assert!(lines[0].contains("\"deadline_ms\": 3000"));
        assert!(lines[0].ends_with("\"slow_us\": 0, \"exemplar\": null}"));
        assert!(lines[1].contains("\"outcome\": \"shed\", \"shed_reason\": \"saturated\""));
        assert!(lines[1].contains("\"route\": null"));
        assert!(lines[1].contains("\"deadline_ms\": null"));
        assert!(lines[1].contains("\"plan_digest\": \"\""));
    }

    #[test]
    fn seq_is_strictly_increasing_and_ring_is_bounded() {
        let log = QueryLog::open(None, None).unwrap();
        for i in 0..(RING_CAP as u64 + 10) {
            assert_eq!(log.append(&record(i + 1)), i + 1);
        }
        let recent = log.recent_jsonl();
        let lines: Vec<&str> = recent.lines().collect();
        assert_eq!(lines.len(), RING_CAP);
        // Oldest lines were evicted; the tail keeps the newest seqs.
        assert!(lines[0].contains("\"seq\": 11,"));
        assert!(lines[RING_CAP - 1].contains(&format!("\"seq\": {},", RING_CAP as u64 + 10)));
    }

    #[test]
    fn exemplars_are_embedded_json_escaped_and_slow_threshold_is_echoed() {
        let log = QueryLog::open(None, Some(Duration::from_millis(1))).unwrap();
        let mut slow = record(1);
        slow.exemplar = Some("scan: rows=7\n  \"kernel\" wall=2ms".into());
        log.append(&slow);
        let line = log.recent_jsonl();
        assert!(line.contains("\"slow_us\": 1000,"));
        assert!(line.contains("\"exemplar\": \"scan: rows=7\\n  \\\"kernel\\\" wall=2ms\"}"));
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64_hex("a"), format!("{:016x}", fnv64("a")));
        assert_ne!(fnv64("plan a"), fnv64("plan b"));
    }

    #[test]
    fn file_sink_writes_one_line_per_record() {
        let path = std::env::temp_dir()
            .join(format!("vr_qlog_test_{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        {
            let log = QueryLog::open(Some(&path_s), None).unwrap();
            log.append(&record(1));
            log.append(&record(2));
        }
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\": 1,"));
        assert!(lines[1].contains("\"seq\": 2,"));
    }
}
