//! Per-tenant SLO tracking: latency objectives per priority class and
//! rolling-window error-budget burn rates.
//!
//! The query server records every settled request into an
//! [`SloTracker`] keyed by `tenant/priority`. Each class keeps an
//! all-time total and a bounded rolling window of good/bad verdicts;
//! the burn rate is the window's bad fraction divided by the budget
//! the target leaves open:
//!
//! ```text
//! budget     = 1 - target            (e.g. 0.05 for a 95% target)
//! burn_rate  = window_bad_fraction / budget
//! ```
//!
//! A burn rate of 1.0 means the class is consuming its error budget
//! exactly as fast as the objective allows; above 1.0 the budget is
//! burning down and the class will violate its SLO over the window.
//!
//! What counts against the budget:
//!
//! * `shed` and `err` outcomes — always;
//! * `ok` outcomes slower than the class's latency objective.
//!
//! Client-deadline **cancellations are budget-neutral** (not recorded
//! at all): the client chose the deadline, the server honoured it, and
//! charging them would let an aggressive client burn its own budget —
//! or, in CI, make the "zero high-priority violations" gate flaky on
//! loaded runners. The admission ledger still counts them separately.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use crate::admission::Priority;
use crate::sync::Mutex;
use super::qlog::Outcome;

/// Latency objectives and error-budget policy for the tracker.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Latency objective for `Priority::High` completions.
    pub high: Duration,
    /// Latency objective for `Priority::Low` completions.
    pub low: Duration,
    /// Success-rate target in `(0, 1)`; the error budget is `1 - target`.
    pub target: f64,
    /// Rolling-window size, in recorded requests per class.
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            high: Duration::from_secs(5),
            low: Duration::from_secs(30),
            target: 0.95,
            window: 256,
        }
    }
}

impl SloConfig {
    /// Parse a `--slo` spec: comma-separated `key=value` pairs over
    /// `high`/`low` (objective in ms), `target` (fraction), and
    /// `window` (request count). Unset keys keep their defaults.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("slo spec part {part:?} is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("slo {key}={value:?}: {e}");
            match key.trim() {
                "high" => cfg.high = Duration::from_millis(value.parse().map_err(|e| bad(&e))?),
                "low" => cfg.low = Duration::from_millis(value.parse().map_err(|e| bad(&e))?),
                "target" => cfg.target = value.parse().map_err(|e| bad(&e))?,
                "window" => cfg.window = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown slo key {other:?}")),
            }
        }
        if !(cfg.target > 0.0 && cfg.target < 1.0) {
            return Err(format!("slo target must be in (0, 1), got {}", cfg.target));
        }
        if cfg.window == 0 {
            return Err("slo window must be > 0".into());
        }
        Ok(cfg)
    }

    /// The latency objective for a priority class.
    pub fn objective(&self, priority: Priority) -> Duration {
        match priority {
            Priority::High => self.high,
            Priority::Low => self.low,
        }
    }
}

#[derive(Debug, Default)]
struct ClassState {
    total: u64,
    violations: u64,
    /// Rolling window of verdicts; `true` = violation.
    window: VecDeque<bool>,
}

/// Tracks per-`tenant/priority` SLO compliance. One per server.
pub struct SloTracker {
    cfg: SloConfig,
    classes: Mutex<BTreeMap<String, ClassState>>,
}

impl SloTracker {
    /// Build a tracker with the given policy.
    pub fn new(cfg: SloConfig) -> Self {
        Self { cfg, classes: Mutex::new(BTreeMap::new()) }
    }

    /// The policy in force.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Record one settled request. Cancellations are budget-neutral
    /// and ignored entirely (see the module docs for why).
    pub fn record(&self, tenant: &str, priority: Priority, outcome: Outcome, latency: Duration) {
        let violation = match outcome {
            Outcome::Cancelled => return,
            Outcome::Shed | Outcome::Err => true,
            Outcome::Ok => latency > self.cfg.objective(priority),
        };
        let mut classes = self.classes.lock();
        let class = classes.entry(format!("{tenant}/{priority}")).or_default();
        class.total += 1;
        if violation {
            class.violations += 1;
        }
        if class.window.len() == self.cfg.window {
            class.window.pop_front();
        }
        class.window.push_back(violation);
    }

    /// Violations recorded all-time for one class (tests and gates).
    pub fn violations(&self, tenant: &str, priority: Priority) -> u64 {
        self.classes
            .lock()
            .get(&format!("{tenant}/{priority}"))
            .map_or(0, |c| c.violations)
    }

    /// Current burn rate for one class (0.0 when unrecorded).
    pub fn burn_rate(&self, tenant: &str, priority: Priority) -> f64 {
        self.classes
            .lock()
            .get(&format!("{tenant}/{priority}"))
            .map_or(0.0, |c| self.class_burn(c))
    }

    fn class_burn(&self, class: &ClassState) -> f64 {
        if class.window.is_empty() {
            return 0.0;
        }
        let bad = class.window.iter().filter(|&&v| v).count() as f64;
        let fraction = bad / class.window.len() as f64;
        fraction / (1.0 - self.cfg.target)
    }

    /// Deterministic JSON document behind `/slo` and the `STATS` `slo`
    /// block: policy header plus one line per `tenant/priority` class
    /// (BTreeMap order), grep-able by the CI gates.
    pub fn render_json(&self) -> String {
        let classes = self.classes.lock();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"objective_ms\": {{\"high\": {}, \"low\": {}}},\n",
            self.cfg.high.as_millis(),
            self.cfg.low.as_millis()
        ));
        out.push_str(&format!("  \"target\": {:.3},\n", self.cfg.target));
        out.push_str(&format!("  \"window\": {},\n", self.cfg.window));
        out.push_str("  \"tenants\": {");
        for (i, (key, class)) in classes.iter().enumerate() {
            let bad = class.window.iter().filter(|&&v| v).count();
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    \"{}\": {{\"total\": {}, \"violations\": {}, \"window_total\": {}, \
                 \"window_violations\": {}, \"bad_fraction\": {:.3}, \"burn_rate\": {:.3}}}",
                super::json_escape(key),
                class.total,
                class.violations,
                class.window.len(),
                bad,
                if class.window.is_empty() { 0.0 } else { bad as f64 / class.window.len() as f64 },
                self.class_burn(class),
            ));
        }
        if !classes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn spec_parses_and_rejects_nonsense() {
        let cfg = SloConfig::parse("high=6000,low=30000,target=0.9,window=64").unwrap();
        assert_eq!(cfg.high, ms(6000));
        assert_eq!(cfg.low, ms(30000));
        assert_eq!(cfg.target, 0.9);
        assert_eq!(cfg.window, 64);
        // Partial specs keep defaults.
        let partial = SloConfig::parse("high=1000").unwrap();
        assert_eq!(partial.high, ms(1000));
        assert_eq!(partial.low, SloConfig::default().low);
        assert!(SloConfig::parse("high").is_err());
        assert!(SloConfig::parse("bogus=1").is_err());
        assert!(SloConfig::parse("target=1.5").is_err());
        assert!(SloConfig::parse("window=0").is_err());
    }

    #[test]
    fn violations_are_sheds_errs_and_slow_oks_but_never_cancellations() {
        let cfg = SloConfig { high: ms(10), low: ms(100), target: 0.9, window: 8 };
        let t = SloTracker::new(cfg);
        t.record("a", Priority::High, Outcome::Ok, ms(5)); // good
        t.record("a", Priority::High, Outcome::Ok, ms(50)); // slow -> violation
        t.record("a", Priority::High, Outcome::Shed, ms(0)); // violation
        t.record("a", Priority::High, Outcome::Err, ms(1)); // violation
        t.record("a", Priority::High, Outcome::Cancelled, ms(500)); // ignored
        t.record("a", Priority::Low, Outcome::Ok, ms(50)); // good (low objective)
        assert_eq!(t.violations("a", Priority::High), 3);
        assert_eq!(t.violations("a", Priority::Low), 0);
        // 3 bad of 4 recorded, budget 0.1 -> burn 7.5.
        assert!((t.burn_rate("a", Priority::High) - 7.5).abs() < 1e-9);
        assert_eq!(t.burn_rate("a", Priority::Low), 0.0);
        assert_eq!(t.burn_rate("missing", Priority::High), 0.0);
    }

    #[test]
    fn burn_rate_is_computed_over_the_rolling_window_only() {
        let cfg = SloConfig { high: ms(10), low: ms(10), target: 0.5, window: 4 };
        let t = SloTracker::new(cfg);
        // Four violations fill the window: burn = 1.0 / 0.5 = 2.0.
        for _ in 0..4 {
            t.record("w", Priority::High, Outcome::Err, ms(0));
        }
        assert!((t.burn_rate("w", Priority::High) - 2.0).abs() < 1e-9);
        // Four good completions push them all out: burn drops to 0,
        // while the all-time violation count stays.
        for _ in 0..4 {
            t.record("w", Priority::High, Outcome::Ok, ms(1));
        }
        assert_eq!(t.burn_rate("w", Priority::High), 0.0);
        assert_eq!(t.violations("w", Priority::High), 4);
    }

    #[test]
    fn render_json_is_deterministic_and_one_line_per_class() {
        let cfg = SloConfig { high: ms(10), low: ms(10), target: 0.9, window: 4 };
        let t = SloTracker::new(cfg);
        t.record("bronze", Priority::Low, Outcome::Shed, ms(0));
        t.record("gold", Priority::High, Outcome::Ok, ms(1));
        let a = t.render_json();
        let b = t.render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"objective_ms\": {\"high\": 10, \"low\": 10},"));
        assert!(a.contains(
            "    \"bronze/low\": {\"total\": 1, \"violations\": 1, \"window_total\": 1, \
             \"window_violations\": 1, \"bad_fraction\": 1.000, \"burn_rate\": 10.000}"
        ));
        assert!(a.contains(
            "    \"gold/high\": {\"total\": 1, \"violations\": 0, \"window_total\": 1, \
             \"window_violations\": 0, \"bad_fraction\": 0.000, \"burn_rate\": 0.000}"
        ));
        // BTreeMap order: bronze before gold.
        assert!(a.find("bronze/low").unwrap() < a.find("gold/high").unwrap());
    }

    #[test]
    fn empty_tracker_renders_an_empty_tenants_object() {
        let t = SloTracker::new(SloConfig::default());
        let json = t.render_json();
        assert!(json.contains("\"tenants\": {}\n}"));
    }
}
