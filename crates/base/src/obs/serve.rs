//! Live telemetry endpoint: a minimal HTTP/1.1 server over
//! `std::net::TcpListener` exposing registry snapshots while a run is
//! in flight.
//!
//! Routes:
//!
//! | path            | body                                            |
//! |-----------------|-------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the registry      |
//! | `/metrics.json` | the registry's deterministic JSON snapshot      |
//! | `/healthz`      | `ok` (liveness probe)                           |
//! | `/explain`      | plan tree of the in-flight batch (text)         |
//! | *registered*    | any view published via [`set_view`] — the query |
//! |                 | server registers `/slo` and `/requests`         |
//!
//! Threat model / non-perturbation contract:
//!
//! * **read-only** — every response is rendered from a point-in-time
//!   [`super::metrics::MetricsSnapshot`], from the explain string
//!   published via [`set_explain`], or from a [`set_view`] closure
//!   that renders a snapshot of owner state (the `/slo` and
//!   `/requests` closures read an `Arc`'d tracker/ring under its own
//!   lock); no handler can mutate engine or registry state.
//! * **loopback-bound** — the listener binds `127.0.0.1` only; the
//!   endpoint is a local debugging/scrape surface, not a network
//!   service. There is no TLS, auth, or request body parsing to get
//!   wrong — anything that is not a known `GET` path is a 404.
//! * **non-perturbing** — the server runs on its own thread, touches
//!   only snapshots, and query results must be byte-identical with
//!   the server on or off (the obs-gate CI leg diffs exactly that).
//!
//! The server is off by default and owned by whoever calls
//! [`MetricsServer::start`] (the CLI's `--serve-metrics <port>`);
//! dropping the handle shuts the listener down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::sync::RwLock;

/// The explain text published for the in-flight batch (empty until the
/// driver publishes one).
static EXPLAIN: OnceLock<RwLock<String>> = OnceLock::new();

fn explain_cell() -> &'static RwLock<String> {
    EXPLAIN.get_or_init(|| RwLock::new(String::new()))
}

/// Publish the plan tree of the batch currently executing, replacing
/// any previous one. The driver calls this at batch start (plan shape)
/// and again after execution (annotated plan).
pub fn set_explain(text: impl Into<String>) {
    *explain_cell().write() = text.into();
}

/// The currently published explain text, if any.
pub fn explain_text() -> Option<String> {
    let text = explain_cell().read();
    if text.is_empty() {
        None
    } else {
        Some(text.clone())
    }
}

/// A registered view: content type plus a render-on-GET closure.
type View = (&'static str, Arc<dyn Fn() -> String + Send + Sync>);

/// Registered dynamic views, keyed by path. Process-global, like the
/// registry itself: when several servers run in one process, the last
/// registration for a path wins.
static VIEWS: OnceLock<RwLock<std::collections::BTreeMap<String, View>>> = OnceLock::new();

fn views_cell() -> &'static RwLock<std::collections::BTreeMap<String, View>> {
    VIEWS.get_or_init(|| RwLock::new(std::collections::BTreeMap::new()))
}

/// Register (or replace) a dynamic view at `path`. The closure runs
/// per GET and must be a pure snapshot renderer — the endpoint's
/// read-only contract extends to every registered view. The query
/// server uses this for `/slo` and `/requests`.
pub fn set_view(
    path: &str,
    content_type: &'static str,
    render: impl Fn() -> String + Send + Sync + 'static,
) {
    views_cell().write().insert(path.to_string(), (content_type, Arc::new(render)));
}

/// Remove a registered view (servers deregister on drain).
pub fn clear_view(path: &str) {
    views_cell().write().remove(path);
}

fn view_response(path: &str) -> Option<(&'static str, String)> {
    // Clone the Arc and drop the lock before rendering so a slow view
    // never holds the registry against other connections.
    let view = views_cell().read().get(path).cloned();
    view.map(|(content_type, render)| (content_type, render()))
}

/// A running metrics endpoint. Stop it explicitly with
/// [`MetricsServer::stop`] or implicitly by dropping it.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `127.0.0.1:port` (`port` 0 picks an ephemeral port — the
    /// actual one is in [`MetricsServer::addr`]) and serve until
    /// stopped.
    pub fn start(port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe shutdown without
        // a wake-up connection.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("vr-metrics-serve".to_string())
            .spawn(move || serve_loop(listener, flag))?;
        Ok(Self { addr, shutdown, handle: Some(handle) })
    }

    /// The bound address (the real port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Shut the listener down and join the serving thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Hard ceiling on one connection's lifetime, header read through
/// response flush. A client that connects and then trickles (or sends
/// nothing) is cut off here instead of holding its handler hostage.
const CONNECTION_DEADLINE: Duration = Duration::from_millis(1000);

fn serve_loop(listener: TcpListener, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Handlers only read snapshots, but a slow or stalled
                // client must never block the accept loop: each
                // connection gets its own short-lived thread, bounded
                // by CONNECTION_DEADLINE. Handler threads are detached
                // — the deadline, not a join, bounds their lifetime.
                let _ = std::thread::Builder::new()
                    .name("vr-metrics-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    let deadline = std::time::Instant::now() + CONNECTION_DEADLINE;
    stream.set_write_timeout(Some(CONNECTION_DEADLINE))?;
    // Read the request head (bounded; no bodies are accepted). Each
    // read's timeout is the time remaining until the connection
    // deadline, so a client trickling one byte per timeout window
    // cannot extend its welcome indefinitely.
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    loop {
        let now = std::time::Instant::now();
        if now >= deadline {
            break;
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".into());
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            super::metrics::snapshot().to_prometheus(),
        ),
        "/metrics.json" => {
            ("200 OK", "application/json; charset=utf-8", super::metrics::snapshot().to_json())
        }
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".into()),
        "/explain" => match explain_text() {
            Some(text) => ("200 OK", "text/plain; charset=utf-8", text),
            None => ("200 OK", "text/plain; charset=utf-8", "no batch in flight\n".into()),
        },
        _ => match view_response(path) {
            Some((content_type, body)) => ("200 OK", content_type, body),
            None => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".into()),
        },
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn smoke_metrics_and_healthz_on_an_ephemeral_port() {
        // Port 0: the OS assigns an ephemeral port, so the test cannot
        // collide with a parallel run.
        let server = MetricsServer::start(0).expect("bind ephemeral port");
        assert_ne!(server.port(), 0);
        let addr = server.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "healthz response: {health}");
        assert!(health.ends_with("ok\n"));

        super::super::metrics::counter("serve.test.count").add(3);
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("# TYPE vr_serve_test_count counter"));
        assert!(metrics.contains("vr_serve_test_count 3"));

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"serve.test.count\": 3"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn stalled_client_does_not_block_the_accept_loop() {
        let server = MetricsServer::start(0).expect("bind ephemeral port");
        let addr = server.addr();

        // A client that connects, dribbles half a request line, and
        // then goes silent. Before the per-connection handler threads
        // this parked the single accept loop for the full read
        // timeout per read; now it must cost other clients nothing.
        let mut stalled = TcpStream::connect(addr).expect("connect stalled client");
        stalled.write_all(b"GET /met").unwrap();
        stalled.flush().unwrap();

        // While the stalled client holds its connection open, a
        // well-behaved client must be served promptly.
        let t0 = std::time::Instant::now();
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "healthz during stall: {health}");
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "healthz took {:?} behind a stalled client",
            t0.elapsed()
        );

        // The stalled connection itself is cut off at the connection
        // deadline rather than held forever: the server closes it and
        // our read observes EOF (or a reset) within a bounded wait.
        stalled
            .set_read_timeout(Some(CONNECTION_DEADLINE * 3))
            .unwrap();
        let mut rest = Vec::new();
        let _ = stalled.read_to_end(&mut rest);
        server.stop();
    }

    #[test]
    fn registered_views_are_served_and_deregistered() {
        let server = MetricsServer::start(0).expect("bind ephemeral port");
        let addr = server.addr();
        // Use a test-unique path: the view map is process-global.
        set_view("/serve-test-view", "application/json; charset=utf-8", || {
            "{\"view\": true}\n".to_string()
        });
        let response = get(addr, "/serve-test-view");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "view response: {response}");
        assert!(response.contains("application/json"));
        assert!(response.ends_with("{\"view\": true}\n"));

        clear_view("/serve-test-view");
        let gone = get(addr, "/serve-test-view");
        assert!(gone.starts_with("HTTP/1.1 404"), "cleared view response: {gone}");
        server.stop();
    }

    #[test]
    fn explain_route_serves_the_published_plan() {
        let server = MetricsServer::start(0).expect("bind ephemeral port");
        set_explain("query.q1 (engine=reference)\n  sink\n");
        let response = get(server.addr(), "/explain");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("query.q1 (engine=reference)"));
        set_explain("");
        server.stop();
    }
}
