//! Foundation types shared by every Visual Road crate.
//!
//! This crate deliberately has no dependencies: everything downstream —
//! the city simulator, the codec, the benchmark driver — builds on the
//! identifiers, units, error type, and deterministic random number
//! generator defined here.
//!
//! # Determinism
//!
//! Visual Road's headline reproducibility property is that a benchmark
//! configuration `{L, R, t, s}` always produces the identical dataset
//! (§3.1 of the paper). To guarantee that across compiler and library
//! versions, the generator's randomness comes from [`rng::VrRng`], a
//! xoshiro256++ generator seeded via SplitMix64, implemented in this
//! crate rather than borrowed from an external crate whose stream might
//! change between releases.

pub mod admission;
pub mod buf;
pub mod error;
pub mod fault;
pub mod id;
pub mod obs;
pub mod presets;
pub mod rng;
pub mod sync;
pub mod units;

pub use buf::{BufSlice, FramePool, SharedBuf};
pub use error::{Error, Result};
pub use id::{CameraId, CameraKind, LicensePlate, PedestrianId, QueryId, TileId, VehicleId, VideoId};
pub use rng::VrRng;
pub use units::{Duration, FrameRate, Resolution, Timestamp};

/// Benchmark hyperparameters (§3.1): the only four knobs a Visual Road
/// user may turn in version 1.0 of the benchmark.
///
/// * `scale` — the scale factor *L*: number of tiles in the city, and
///   (via `4L`) the number of instances in each query batch.
/// * `resolution` — applied globally to every camera.
/// * `duration` — simulation length, applied globally to every camera.
/// * `seed` — reinitializes the pseudorandom number generator so other
///   users can deterministically reproduce the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hyperparameters {
    /// Scale factor `L >= 1`.
    pub scale: u32,
    /// Global camera resolution `R`.
    pub resolution: Resolution,
    /// Global simulation duration `t`.
    pub duration: Duration,
    /// Random seed `s`.
    pub seed: u64,
}

impl Hyperparameters {
    /// Create a hyperparameter set, validating the scale factor.
    pub fn new(scale: u32, resolution: Resolution, duration: Duration, seed: u64) -> Result<Self> {
        if scale == 0 {
            return Err(Error::InvalidConfig("scale factor L must be >= 1".into()));
        }
        if resolution.width == 0 || resolution.height == 0 {
            return Err(Error::InvalidConfig("resolution must be nonzero".into()));
        }
        Ok(Self { scale, resolution, duration, seed })
    }

    /// Number of instances in each query batch (`4L`, §3.1).
    pub fn batch_size(&self) -> usize {
        4 * self.scale as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperparameters_validate_scale() {
        let r = Resolution::new(960, 540);
        let d = Duration::from_secs(1.0);
        assert!(Hyperparameters::new(0, r, d, 42).is_err());
        let h = Hyperparameters::new(4, r, d, 42).unwrap();
        assert_eq!(h.batch_size(), 16);
    }

    #[test]
    fn hyperparameters_validate_resolution() {
        let d = Duration::from_secs(1.0);
        assert!(Hyperparameters::new(1, Resolution::new(0, 540), d, 1).is_err());
        assert!(Hyperparameters::new(1, Resolution::new(960, 0), d, 1).is_err());
    }
}
