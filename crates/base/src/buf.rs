//! The zero-copy data plane: shared byte buffers and a frame-plane pool.
//!
//! Storage reads, container parsing, and packet handling all used to
//! hand each consumer a fresh `Vec<u8>`. The types here replace that
//! copy-per-consumer model with reference-counted views:
//!
//! * [`SharedBuf`] — an immutable byte buffer over `Arc<Vec<u8>>`. Cloning
//!   is a refcount bump; the bytes are read exactly once (at the
//!   storage layer) and every downstream consumer borrows them.
//! * [`BufSlice`] — an owned zero-copy range view into a `SharedBuf`
//!   (a container sample, a pipe message). Holding a slice keeps the
//!   whole backing buffer alive, so long-lived holders should copy out
//!   if they only need a tiny range of a huge file.
//! * [`FramePool`] — an arena that recycles plane-sized `Vec<u8>`
//!   buffers (wrapped in unique `Arc`s) so steady-state decode/encode
//!   loops allocate nothing per frame.

use std::ops::{Deref, Range};
use std::sync::{Arc, Mutex};

/// An immutable, cheaply-cloneable byte buffer backed by a shared
/// vector (`Arc<Vec<u8>>`: wrapping an owned `Vec` never copies the
/// bytes, unlike `Arc<[u8]>` whose inline refcount header forces one).
#[derive(Debug, Clone)]
pub struct SharedBuf {
    data: Arc<Vec<u8>>,
}

impl SharedBuf {
    /// Wrap an owned vector (no byte copy).
    pub fn from_vec(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }

    /// An empty buffer.
    pub fn empty() -> Self {
        Self { data: Arc::new(Vec::new()) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The full contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// A zero-copy view of `range`. Panics if the range is out of
    /// bounds (same contract as slice indexing).
    pub fn slice(&self, range: Range<usize>) -> BufSlice {
        assert!(
            range.start <= range.end && range.end <= self.data.len(),
            "slice {}..{} out of bounds for SharedBuf of {} bytes",
            range.start,
            range.end,
            self.data.len()
        );
        BufSlice { data: self.data.clone(), start: range.start, end: range.end }
    }

    /// Copy the contents into a fresh `Vec` (the escape hatch for
    /// callers that genuinely need ownership).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for SharedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for SharedBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for SharedBuf {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for SharedBuf {
    fn from(s: &[u8]) -> Self {
        Self::from_vec(s.to_vec())
    }
}

impl PartialEq for SharedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for SharedBuf {}

impl PartialEq<[u8]> for SharedBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for SharedBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for SharedBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<SharedBuf> for Vec<u8> {
    fn eq(&self, other: &SharedBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for SharedBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for SharedBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

/// An owned zero-copy range view into a [`SharedBuf`].
#[derive(Debug, Clone)]
pub struct BufSlice {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl BufSlice {
    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view relative to this view's start. Panics on overflow.
    pub fn slice(&self, range: Range<usize>) -> BufSlice {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of bounds for BufSlice of {} bytes",
            range.start,
            range.end,
            self.len()
        );
        BufSlice {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for BufSlice {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BufSlice {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<SharedBuf> for BufSlice {
    fn from(buf: SharedBuf) -> Self {
        let end = buf.len();
        BufSlice { data: buf.data, start: 0, end }
    }
}

impl From<Vec<u8>> for BufSlice {
    fn from(v: Vec<u8>) -> Self {
        SharedBuf::from_vec(v).into()
    }
}

impl PartialEq for BufSlice {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for BufSlice {}

impl PartialEq<[u8]> for BufSlice {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Vec<u8>> for BufSlice {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Default number of frames' worth of plane buffers a pool retains
/// (override with `VR_POOL_FRAMES`). Sized for the deepest pipeline
/// configuration: `PIPE_DEPTH` (8) frames in flight per channel, plus
/// the codec reference frames.
pub const DEFAULT_POOL_FRAMES: usize = 16;

/// An arena recycling plane-sized byte buffers through the pipeline.
///
/// Buffers are stored as *unique* `Arc<Vec<u8>>` so a recycled take is
/// completely allocation-free: the `Arc` shell and the `Vec` backing
/// store both come back from the free list. [`FramePool::take`] resets
/// contents to `fill`, so a pooled buffer is observationally identical
/// to `vec![fill; len]` — pooling can never change decoded output.
///
/// Pools are per-owner (each `Decoder`/`Encoder` creates its own), not
/// process-global, so allocation accounting stays deterministic when
/// tests run concurrently.
#[derive(Debug)]
pub struct FramePool {
    free: Mutex<Vec<Arc<Vec<u8>>>>,
    /// Maximum retained buffers (plane count, i.e. 3× frames).
    cap: usize,
}

impl FramePool {
    /// A pool retaining up to `frames` frames (3 planes each).
    pub fn new(frames: usize) -> Arc<Self> {
        Arc::new(Self { free: Mutex::new(Vec::new()), cap: frames.max(1) * 3 })
    }

    /// A pool sized from `VR_POOL_FRAMES` (default
    /// [`DEFAULT_POOL_FRAMES`]).
    pub fn from_env() -> Arc<Self> {
        let frames = std::env::var("VR_POOL_FRAMES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_POOL_FRAMES);
        Self::new(frames)
    }

    /// Take a buffer of exactly `len` bytes, every byte set to `fill`.
    /// Reuses a retained buffer when one is available (allocation-free
    /// once warm, as long as `len` fits the recycled capacity),
    /// otherwise allocates fresh.
    pub fn take(&self, len: usize, fill: u8) -> Arc<Vec<u8>> {
        let recycled = self.free.lock().expect("frame pool poisoned").pop();
        match recycled {
            Some(mut arc) => {
                let v = Arc::get_mut(&mut arc).expect("pool buffers are unique");
                v.clear();
                v.resize(len, fill);
                arc
            }
            None => Arc::new(vec![fill; len]),
        }
    }

    /// Return a buffer to the pool. No-ops (dropping the buffer) if the
    /// `Arc` is still shared or the pool is at capacity.
    pub fn put(&self, arc: Arc<Vec<u8>>) {
        if Arc::strong_count(&arc) != 1 {
            return;
        }
        let mut free = self.free.lock().expect("frame pool poisoned");
        if free.len() < self.cap {
            free.push(arc);
        }
    }

    /// Number of buffers currently retained (for tests/introspection).
    pub fn retained(&self) -> usize {
        self.free.lock().expect("frame pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buf_round_trips_and_compares() {
        let buf = SharedBuf::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
        assert_eq!(buf, vec![1, 2, 3, 4, 5]);
        assert_eq!(buf, [1u8, 2, 3, 4, 5]);
        assert_eq!(buf, b"\x01\x02\x03\x04\x05");
        assert_eq!(&buf[1..3], &[2, 3]);
        let clone = buf.clone();
        assert_eq!(clone, buf);
        assert!(SharedBuf::empty().is_empty());
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let buf = SharedBuf::from_vec((0u8..100).collect());
        let s = buf.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s.as_slice(), &(10u8..20).collect::<Vec<_>>()[..]);
        // Sub-slicing is relative to the view.
        let s2 = s.slice(2..5);
        assert_eq!(s2.as_slice(), &[12, 13, 14]);
        // Views survive the parent buffer being dropped.
        drop(buf);
        assert_eq!(s2.as_slice(), &[12, 13, 14]);
        // Full-buffer conversion.
        let full: BufSlice = SharedBuf::from_vec(vec![9, 9]).into();
        assert_eq!(full.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        SharedBuf::from_vec(vec![0; 4]).slice(2..8);
    }

    #[test]
    fn pool_recycles_unique_buffers() {
        let pool = FramePool::new(2);
        let a = pool.take(16, 0);
        assert_eq!(a.as_slice(), &[0u8; 16]);
        pool.put(a);
        assert_eq!(pool.retained(), 1);
        // A recycled take is reset to the requested fill and length.
        let b = pool.take(8, 128);
        assert_eq!(b.as_slice(), &[128u8; 8]);
        // Shared buffers are not retained.
        let c = b.clone();
        pool.put(b);
        assert_eq!(pool.retained(), 0);
        drop(c);
    }

    #[test]
    fn pool_respects_capacity() {
        let pool = FramePool::new(1); // cap = 3 planes
        for _ in 0..5 {
            pool.put(Arc::new(vec![0u8; 4]));
        }
        assert_eq!(pool.retained(), 3);
    }
}
