//! Physical units used throughout the benchmark: resolutions, frame
//! rates, durations, and per-frame timestamps.

use std::fmt;

/// A video frame resolution in pixels.
///
/// The benchmark's standard resolutions (§5) are exposed as associated
/// constants; arbitrary resolutions are also allowed (the VCG supports
/// configurable camera resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Resolution {
    /// Horizontal pixel count `R_x`.
    pub width: u32,
    /// Vertical pixel count `R_y`.
    pub height: u32,
}

impl Resolution {
    /// 1κ (960×540) — the paper's smallest standard resolution.
    pub const K1: Resolution = Resolution { width: 960, height: 540 };
    /// 2κ (1920×1080).
    pub const K2: Resolution = Resolution { width: 1920, height: 1080 };
    /// 4κ (3840×2160).
    pub const K4: Resolution = Resolution { width: 3840, height: 2160 };

    /// Construct a resolution.
    pub const fn new(width: u32, height: u32) -> Self {
        Self { width, height }
    }

    /// Total pixel count per frame.
    pub const fn pixels(&self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Scale both dimensions by a rational factor, rounding to even
    /// (YUV 4:2:0 requires even dimensions).
    pub fn scaled(&self, num: u32, den: u32) -> Resolution {
        let w = ((self.width as u64 * num as u64) / den as u64).max(2) as u32 & !1;
        let h = ((self.height as u64 * num as u64) / den as u64).max(2) as u32 & !1;
        Resolution::new(w, h)
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// Frames per second. Visual Road 1.0 supports 15–90 FPS (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRate(pub u32);

impl FrameRate {
    /// The default capture rate used by all Visual City cameras (§5).
    pub const STANDARD: FrameRate = FrameRate(30);
    /// Lowest rate supported by the benchmark.
    pub const MIN: FrameRate = FrameRate(15);
    /// Highest rate supported by the benchmark.
    pub const MAX: FrameRate = FrameRate(90);

    /// Whether this rate falls inside the supported 15–90 FPS range.
    pub fn is_supported(&self) -> bool {
        (Self::MIN.0..=Self::MAX.0).contains(&self.0)
    }

    /// Seconds per frame.
    pub fn frame_interval_secs(&self) -> f64 {
        1.0 / self.0 as f64
    }
}

impl fmt::Display for FrameRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fps", self.0)
    }
}

/// A span of simulated time, stored in microseconds to keep frame
/// arithmetic exact for every supported frame rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// From whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// From (possibly fractional) seconds.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0, "durations are non-negative");
        Self { micros: (secs * 1e6).round() as u64 }
    }

    /// From whole minutes (the paper specifies dataset durations in
    /// minutes; see Table 2).
    pub fn from_mins(mins: u64) -> Self {
        Self { micros: mins * 60 * 1_000_000 }
    }

    /// Microsecond count.
    pub const fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Number of frames this duration spans at `rate` (floor).
    pub fn frames(&self, rate: FrameRate) -> u64 {
        self.micros * rate.0 as u64 / 1_000_000
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration { micros: self.micros + rhs.micros }
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration { micros: self.micros.saturating_sub(rhs.micros) }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 60.0 {
            write!(f, "{:.1} min", s / 60.0)
        } else {
            write!(f, "{s:.2} s")
        }
    }
}

/// A timestamp within a video, measured from the start of capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp {
    micros: u64,
}

impl Timestamp {
    /// Start of the video.
    pub const ZERO: Timestamp = Timestamp { micros: 0 };

    /// From whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// Timestamp of frame `index` at `rate`.
    pub fn of_frame(index: u64, rate: FrameRate) -> Self {
        Self { micros: index * 1_000_000 / rate.0 as u64 }
    }

    /// Microsecond count.
    pub const fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Index of the frame visible at this timestamp, at `rate`.
    ///
    /// Rounds to the nearest frame so that `of_frame`/`frame_index`
    /// round-trip exactly even when the frame interval is not an
    /// integer number of microseconds (e.g. 30 fps).
    pub fn frame_index(&self, rate: FrameRate) -> u64 {
        (self.micros * rate.0 as u64 + 500_000) / 1_000_000
    }

    /// Duration elapsed since `earlier` (saturating).
    pub fn since(&self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(earlier.micros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_resolutions() {
        assert_eq!(Resolution::K1.to_string(), "960x540");
        assert_eq!(Resolution::K2.pixels(), 1920 * 1080);
        assert_eq!(Resolution::K4.width, 3840);
    }

    #[test]
    fn scaled_stays_even() {
        let r = Resolution::new(960, 540).scaled(1, 4);
        assert_eq!(r, Resolution::new(240, 134)); // 135 rounded down to even
        assert_eq!(Resolution::new(3, 3).scaled(1, 2), Resolution::new(2, 2));
    }

    #[test]
    fn frame_rate_support_window() {
        assert!(FrameRate::STANDARD.is_supported());
        assert!(FrameRate(15).is_supported());
        assert!(FrameRate(90).is_supported());
        assert!(!FrameRate(14).is_supported());
        assert!(!FrameRate(91).is_supported());
    }

    #[test]
    fn duration_frame_math_is_exact() {
        let d = Duration::from_mins(60);
        assert_eq!(d.frames(FrameRate(30)), 60 * 60 * 30);
        let d = Duration::from_secs(1.0);
        assert_eq!(d.frames(FrameRate(15)), 15);
        assert_eq!(d.frames(FrameRate(90)), 90);
    }

    #[test]
    fn timestamp_frame_round_trip() {
        let rate = FrameRate(30);
        for i in [0u64, 1, 29, 30, 12345] {
            let ts = Timestamp::of_frame(i, rate);
            assert_eq!(ts.frame_index(rate), i);
        }
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_secs(2.0);
        let b = Duration::from_secs(0.5);
        assert_eq!((a + b).as_secs_f64(), 2.5);
        assert_eq!((b - a), Duration::ZERO); // saturating
    }
}
