//! Std-only concurrency primitives.
//!
//! The workspace builds with zero registry dependencies (DESIGN.md,
//! "std-only substitution"): this module supplies the small slice of
//! `crossbeam` and `parking_lot` the repository actually used —
//!
//! * a bounded MPMC [`channel`] with blocking send/recv and
//!   disconnect-on-drop semantics (the storage pipe's backpressure
//!   mechanism),
//! * [`Mutex`] / [`RwLock`] / [`Condvar`] wrappers over `std::sync`
//!   that return guards directly instead of a poison `Result` (a
//!   poisoned lock means a panicked holder; propagating the panic is
//!   the only sane response in this codebase),
//! * a small [`WorkerPool`] plus a [`parallel_chunks`] helper for the
//!   batch engine's data-parallel frame maps.
//!
//! Everything here is built from `std::sync` + `std::thread` only.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Lock wrappers
// ---------------------------------------------------------------------------

/// A mutex whose `lock()` returns the guard directly.
///
/// Poisoning (a holder panicked) is converted into a panic here: the
/// protected data may be mid-update and no caller in this workspace
/// can recover meaningfully.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("vr_base::sync::Mutex poisoned: a holder panicked")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("vr_base::sync::Mutex poisoned: a holder panicked")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards
/// directly (see [`Mutex`] for the poisoning policy).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("vr_base::sync::RwLock poisoned: a holder panicked")
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("vr_base::sync::RwLock poisoned: a holder panicked")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("vr_base::sync::RwLock poisoned: a holder panicked")
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard and wait for a notification.
    pub fn wait<'a, T>(
        &self,
        guard: std::sync::MutexGuard<'a, T>,
    ) -> std::sync::MutexGuard<'a, T> {
        self.0.wait(guard).expect("vr_base::sync::Condvar: mutex poisoned")
    }

    /// Like [`wait`](Condvar::wait), but give up after `dur`; the
    /// returned flag reports whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: std::sync::MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (std::sync::MutexGuard<'a, T>, bool) {
        let (guard, res) = self
            .0
            .wait_timeout(guard, dur)
            .expect("vr_base::sync::Condvar: mutex poisoned");
        (guard, res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one()
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all()
    }
}

// ---------------------------------------------------------------------------
// Bounded MPMC channel
// ---------------------------------------------------------------------------

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped; carries the unsent value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is full; carries the unsent value back.
    Full(T),
    /// Every receiver has been dropped; carries the unsent value back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is ready, but senders are still alive.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout; senders are still alive.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    /// Signals receivers: an item arrived or the last sender left.
    readable: Condvar,
    /// Signals senders: a slot opened or the last receiver left.
    writable: Condvar,
}

/// The sending half of a bounded channel; cloneable (MPMC).
pub struct Sender<T>(Arc<Channel<T>>);

/// The receiving half of a bounded channel; cloneable (MPMC).
pub struct Receiver<T>(Arc<Channel<T>>);

/// Create a bounded MPMC channel with room for `capacity` in-flight
/// messages (`capacity >= 1`). `send` blocks while the queue is full;
/// `recv` blocks while it is empty. Dropping the last sender
/// disconnects receivers once the queue drains; dropping the last
/// receiver makes further sends fail immediately.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

impl<T> Sender<T> {
    /// Block until the value is enqueued, or fail with the value if
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.state.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < st.capacity {
                st.queue.push_back(value);
                drop(st);
                self.0.readable.notify_one();
                return Ok(());
            }
            st = self.0.writable.wait(st);
        }
    }

    /// Non-blocking send: enqueue if a slot is free, otherwise report
    /// [`TrySendError::Full`] without waiting. Callers that fall back
    /// to the blocking [`send`](Sender::send) can time that wait —
    /// which is exactly how the pipeline's contention counter works.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.0.state.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.queue.len() < st.capacity {
            st.queue.push_back(value);
            drop(st);
            self.0.readable.notify_one();
            Ok(())
        } else {
            Err(TrySendError::Full(value))
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().senders += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake blocked receivers so they observe the disconnect.
            self.0.readable.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives, or fail once the channel is
    /// empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.0.readable.wait(st);
        }
    }

    /// Block until a message arrives, the senders disconnect, or
    /// `timeout` elapses — the pipeline's stage watchdogs use this to
    /// turn a stalled upstream stage into a typed error instead of an
    /// unbounded hang.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.0.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self.0.readable.wait_timeout(st, deadline - now);
            st = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.0.state.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.0.writable.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().receivers += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake blocked senders so they observe the broken pipe.
            self.0.writable.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A fixed-size pool of worker threads executing boxed closures.
///
/// Jobs are `'static`; for borrowed data-parallel maps use
/// [`parallel_chunks`], which runs on scoped threads instead.
pub struct WorkerPool {
    tx: Option<Sender<Box<dyn FnOnce() + Send + 'static>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) pulling from a shared
    /// queue of `queue_depth` pending jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Box<dyn FnOnce() + Send + 'static>>(queue_depth.max(1));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("vr-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self { tx: Some(tx), handles }
    }

    /// Enqueue a job, blocking while the queue is full.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("worker pool already shut down")
            .send(Box::new(job))
            .ok()
            .expect("worker pool threads exited early");
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the queue; workers drain outstanding jobs and exit.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Apply `f` to every element of `items` in place, splitting the slice
/// across `workers` scoped threads. `f` receives `(global_index,
/// &mut item)`. With one worker (or one item) runs inline.
pub fn parallel_chunks<T: Send, F>(items: &mut [T], workers: usize, f: F)
where
    F: Fn(usize, &mut T) + Send + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (c, part) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, item) in part.iter_mut().enumerate() {
                    f(c * chunk + i, item);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Worker budget
// ---------------------------------------------------------------------------

/// Default number of workers for parallel execution.
///
/// Resolved once per process: `VR_WORKERS` (a positive integer) wins;
/// otherwise `std::thread::available_parallelism()`. `VR_WORKERS=1`
/// forces the sequential code paths everywhere for debugging. Callers
/// that need a race-free per-run override (tests, benches) should set
/// the worker count on their execution context instead of mutating
/// the environment.
pub fn worker_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        if let Ok(raw) = std::env::var("VR_WORKERS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// The machine's actual parallelism, independent of `VR_WORKERS`: the
/// ceiling above which extra compute threads only add spawn and
/// scheduling overhead. Data-parallel fan-outs clamp to it so a
/// hand-tuned `workers=4` never oversubscribes a smaller host (the
/// classic single-core case where 4-way eager decode *lost* to the
/// sequential path).
pub fn hardware_parallelism() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

/// A cooperative cancellation token: cheap to clone, checked by the
/// pipeline once per frame. Cancellation fires either explicitly (via
/// [`cancel`](CancelToken::cancel)) or implicitly once an optional
/// deadline passes — the benchmark driver hands each query instance a
/// deadline-bearing token so a straggler can be cut off and reported
/// as a degraded row instead of blocking the batch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<std::sync::atomic::AtomicBool>,
    deadline: Option<std::time::Instant>,
}

impl CancelToken {
    /// A token that never cancels unless [`cancel`](CancelToken::cancel)
    /// is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: std::time::Instant) -> Self {
        Self { flag: Arc::default(), deadline: Some(deadline) }
    }

    /// Request cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => {
                // Latch, so clones without a clock check agree and the
                // (cheap) flag path answers subsequent calls.
                self.flag.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The deadline, if this token carries one.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }
}

/// A monotonically increasing counter usable across threads; used for
/// cheap instrumentation where a full lock is overkill.
#[derive(Debug, Default)]
pub struct Counter(AtomicUsize);

impl Counter {
    /// Zero-initialized counter.
    pub const fn new() -> Self {
        Self(AtomicUsize::new(0))
    }

    /// Add `n`, returning the previous value.
    pub fn add(&self, n: usize) -> usize {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn channel_round_trips_in_order() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_blocks_until_capacity_frees() {
        let (tx, rx) = channel(1);
        tx.send(1u32).unwrap();
        let start = Instant::now();
        let sender = std::thread::spawn(move || {
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(rx.recv(), Ok(1));
        sender.join().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(40), "send returned early");
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let (tx, rx) = channel::<u32>(1);
        let receiver = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(receiver.join().unwrap(), 7);
    }

    #[test]
    fn dropping_receiver_breaks_send() {
        let (tx, rx) = channel(1);
        drop(rx);
        assert_eq!(tx.send(5u8), Err(SendError(5)));
    }

    #[test]
    fn dropping_sender_drains_then_disconnects() {
        let (tx, rx) = channel(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpmc_fan_in_fan_out_delivers_everything() {
        let (tx, rx) = channel::<usize>(8);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expect: Vec<usize> =
            (0..3).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel(1);
        assert_eq!(tx.try_send(1u8), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::<u32>(1);
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(30));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cancel_token_fires_on_request_and_deadline() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.cancelled());
        clone.cancel();
        assert!(t.cancelled(), "clones share the flag");

        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(25));
        assert!(!t.cancelled());
        std::thread::sleep(Duration::from_millis(30));
        assert!(t.cancelled(), "deadline passed");
        assert!(t.cancelled(), "cancellation latches");
        assert!(t.deadline().is_some());
    }

    #[test]
    fn worker_budget_is_at_least_one() {
        assert!(worker_budget() >= 1);
        // Cached: repeated calls agree.
        assert_eq!(worker_budget(), worker_budget());
    }

    #[test]
    fn mutex_and_rwlock_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn worker_pool_runs_every_job() {
        let counter = Arc::new(Counter::new());
        {
            let pool = WorkerPool::new(3, 4);
            assert_eq!(pool.workers(), 3);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.add(1);
                });
            }
            // Drop joins the pool, draining the queue.
        }
        assert_eq!(counter.get(), 20);
    }

    #[test]
    fn parallel_chunks_covers_all_indices() {
        let mut data = vec![0usize; 37];
        parallel_chunks(&mut data, 4, |i, slot| *slot = i * 2);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
        // Single-worker inline path.
        let mut small = vec![0usize; 3];
        parallel_chunks(&mut small, 1, |i, slot| *slot = i + 10);
        assert_eq!(small, vec![10, 11, 12]);
    }
}
