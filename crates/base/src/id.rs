//! Identifier newtypes for entities in the simulation and benchmark.
//!
//! Newtypes (rather than bare integers) prevent the classic bug of
//! indexing the vehicle table with a camera id; they cost nothing at
//! runtime.

use std::fmt;

use crate::rng::VrRng;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A tile within Visual City (position in the L-tile layout).
    TileId,
    "tile-"
);
id_type!(
    /// A camera placed within Visual City.
    CameraId,
    "cam-"
);
id_type!(
    /// A vehicle spawned in the simulation.
    VehicleId,
    "veh-"
);
id_type!(
    /// A pedestrian spawned in the simulation.
    PedestrianId,
    "ped-"
);
id_type!(
    /// An input video produced by the VCG (one per 2D camera stream).
    VideoId,
    "vid-"
);
id_type!(
    /// A query instance within a benchmark batch.
    QueryId,
    "q-"
);

/// The kind of camera at a mount point (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CameraKind {
    /// One of the `c_t` randomly-oriented traffic cameras positioned
    /// 10–20 m above a roadway.
    Traffic,
    /// One of the four constituent 120°-FOV 2D cameras of a panoramic
    /// rig positioned 5–10 m above a sidewalk. The payload is the face
    /// index `0..4`.
    PanoramicFace(u8),
}

impl CameraKind {
    /// True for faces of a panoramic rig.
    pub fn is_panoramic(&self) -> bool {
        matches!(self, CameraKind::PanoramicFace(_))
    }
}

/// A six-character alphanumeric license plate (§4.2.1: "a unique
/// front-facing license plate containing six random alphanumeric
/// digits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LicensePlate(pub [u8; 6]);

/// The plate alphabet: visually distinct alphanumerics (no 0/O or 1/I
/// confusion pairs would matter for a human, but the recognizer reads
/// glyph codes, so the full 36-character set is used).
pub const PLATE_ALPHABET: &[u8; 36] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

impl LicensePlate {
    /// Draw a uniformly random plate.
    pub fn random(rng: &mut VrRng) -> Self {
        let mut chars = [0u8; 6];
        for c in &mut chars {
            *c = PLATE_ALPHABET[rng.below(PLATE_ALPHABET.len() as u64) as usize];
        }
        Self(chars)
    }

    /// Parse from a 6-character ASCII string.
    pub fn parse(s: &str) -> Option<Self> {
        let b = s.as_bytes();
        if b.len() != 6 || !b.iter().all(|c| PLATE_ALPHABET.contains(c)) {
            return None;
        }
        let mut chars = [0u8; 6];
        chars.copy_from_slice(b);
        Some(Self(chars))
    }

    /// Index of each character within [`PLATE_ALPHABET`]; the glyph
    /// codes rendered onto the plate and decoded by the recognizer.
    pub fn glyph_codes(&self) -> [u8; 6] {
        let mut codes = [0u8; 6];
        for (i, c) in self.0.iter().enumerate() {
            codes[i] = PLATE_ALPHABET.iter().position(|a| a == c).unwrap() as u8;
        }
        codes
    }

    /// Reconstruct a plate from glyph codes (inverse of
    /// [`glyph_codes`](Self::glyph_codes)).
    pub fn from_glyph_codes(codes: [u8; 6]) -> Option<Self> {
        let mut chars = [0u8; 6];
        for (i, &code) in codes.iter().enumerate() {
            chars[i] = *PLATE_ALPHABET.get(code as usize)?;
        }
        Some(Self(chars))
    }
}

impl fmt::Display for LicensePlate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.0 {
            write!(f, "{}", *c as char)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TileId(3).to_string(), "tile-3");
        assert_eq!(CameraId(0).to_string(), "cam-0");
        assert_eq!(VideoId(17).to_string(), "vid-17");
    }

    #[test]
    fn plate_parse_round_trip() {
        let p = LicensePlate::parse("AB12CZ").unwrap();
        assert_eq!(p.to_string(), "AB12CZ");
        assert!(LicensePlate::parse("ab12cz").is_none());
        assert!(LicensePlate::parse("AB12C").is_none());
        assert!(LicensePlate::parse("AB12CZX").is_none());
    }

    #[test]
    fn glyph_codes_round_trip() {
        let mut rng = VrRng::seed_from(11);
        for _ in 0..100 {
            let p = LicensePlate::random(&mut rng);
            assert_eq!(LicensePlate::from_glyph_codes(p.glyph_codes()), Some(p));
        }
    }

    #[test]
    fn random_plates_are_diverse() {
        let mut rng = VrRng::seed_from(12);
        let plates: std::collections::HashSet<_> =
            (0..1000).map(|_| LicensePlate::random(&mut rng)).collect();
        assert!(plates.len() > 990, "unexpected collisions: {}", plates.len());
    }

    #[test]
    fn camera_kind_predicates() {
        assert!(!CameraKind::Traffic.is_panoramic());
        assert!(CameraKind::PanoramicFace(2).is_panoramic());
    }
}
