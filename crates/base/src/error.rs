//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across the Visual Road crates.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced anywhere in the Visual Road stack.
///
/// One shared enum (rather than one per crate) keeps the public API of
/// the benchmark driver small: a caller running `vcd.execute(..)` sees a
/// single error surface regardless of whether a failure originated in
/// the container demuxer, the codec, or the scene simulator.
#[derive(Debug)]
pub enum Error {
    /// A configuration value was rejected (bad scale factor, impossible
    /// camera placement, unsupported resolution, ...).
    InvalidConfig(String),
    /// An encoded bitstream, container file, or metadata blob failed to
    /// parse.
    Corrupt(String),
    /// A requested item (video, track, sample, tile, query) is absent.
    NotFound(String),
    /// The engine under test does not implement the requested query.
    Unsupported(String),
    /// A resource limit was exhausted (e.g. the functional engine's
    /// device-memory pool, §6.2).
    ResourceExhausted(String),
    /// Wrapper around I/O failures from the storage layer.
    Io(std::io::Error),
    /// Query output failed validation (PSNR below threshold, semantic
    /// mismatch against scene geometry).
    ValidationFailed(String),
    /// A pipeline stage panicked or stalled and was contained by a
    /// stage watchdog instead of poisoning its channels.
    StagePanic(String),
    /// Execution was cancelled cooperatively (deadline enforcement or
    /// an explicit cancellation token).
    Cancelled(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::ValidationFailed(m) => write!(f, "validation failed: {m}"),
            Error::StagePanic(m) => write!(f, "stage panicked: {m}"),
            Error::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::InvalidConfig("bad L".into());
        assert!(e.to_string().contains("bad L"));
        let e = Error::Unsupported("Q4 on cascade engine".into());
        assert!(e.to_string().contains("Q4"));
    }

    #[test]
    fn io_error_round_trips_source() {
        use std::error::Error as _;
        let e: Error = std::io::Error::new(std::io::ErrorKind::Other, "disk on fire").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("disk on fire"));
    }
}
