//! Deterministic pseudorandom number generation.
//!
//! Dataset reproducibility (§3.1: "a random seed *s* allows other users
//! to deterministically reproduce datasets") requires a generator whose
//! output stream is pinned by this repository, not by an external
//! crate's release history. [`VrRng`] is xoshiro256++ (Blackman &
//! Vigna), seeded through SplitMix64 exactly as the reference C code
//! recommends.
//!
//! Substreams: large generation tasks (per-tile, per-camera) fork child
//! generators with [`VrRng::fork`], so tiles can be simulated on
//! different threads (distributed VCG mode, §5) while producing output
//! identical to the single-node run.

/// SplitMix64 step, used for seeding and for cheap stateless hashes.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless 64-bit mix of two values; used to derive per-entity seeds
/// (e.g. tile index → tile seed) without consuming generator state.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0x6A09_E667_F3BC_C908;
    splitmix64(&mut s)
}

/// The workspace's deterministic PRNG: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VrRng {
    s: [u64; 4],
}

impl VrRng {
    /// Seed the generator. Any seed (including 0) is valid; SplitMix64
    /// expands it into a full 256-bit state.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Fork an independent child generator identified by `stream`.
    ///
    /// Forking does not advance `self`, so the set of children is a pure
    /// function of (parent state, stream id) — the property that lets
    /// distributed generation reproduce single-node output.
    pub fn fork(&self, stream: u64) -> Self {
        VrRng::seed_from(mix64(self.s[0] ^ self.s[2], stream))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform integer in the inclusive range `[lo, hi]` as `usize`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]` as `i64`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo.wrapping_add(self.range_u64(0, (hi - lo) as u64) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Standard normal variate via the polar Box–Muller method.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = self.range_f64(-1.0, 1.0);
            let v = self.range_f64(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ C implementation seeded
    /// with SplitMix64(12345): pins the stream forever.
    #[test]
    fn stream_is_pinned() {
        let mut a = VrRng::seed_from(12345);
        let mut b = VrRng::seed_from(12345);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        // Distinct seeds must diverge immediately (probability of
        // collision in the first 8 outputs is negligible).
        let mut c = VrRng::seed_from(12346);
        let third: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(first, third);
    }

    #[test]
    fn fork_is_pure() {
        let parent = VrRng::seed_from(7);
        let mut c1 = parent.fork(3);
        let mut c2 = parent.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent.fork(4);
        assert_ne!(parent.fork(3).next_u64(), c3.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = VrRng::seed_from(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = VrRng::seed_from(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = VrRng::seed_from(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.range(5, 8) {
                5 => saw_lo = true,
                8 => saw_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = VrRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = VrRng::seed_from(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = VrRng::seed_from(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn mix64_differs_by_argument() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), mix64(0, 1));
        assert_eq!(mix64(10, 20), mix64(10, 20));
    }
}
