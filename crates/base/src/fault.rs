//! Deterministic fault injection.
//!
//! The Visual City Driver is a *robustness* harness: it must keep
//! driving a batch when a stream corrupts, a disk hiccups, or a kernel
//! stalls, and it must report the degradation quantitatively rather
//! than pass/fail (§3.2's online mode tolerates engines that fall
//! behind; §4 validates degraded output by PSNR). To prove those
//! recovery paths in CI this module provides a **seeded, deterministic
//! fault injector**: one [`FaultPlan`] parsed from a `VR_FAULTS` spec,
//! one [`FaultInjector`] whose every decision is a pure function of
//! `(seed, site, decision-index)`, and a process-global install point
//! the storage readers, demuxer, decoder, and pipeline stages consult.
//!
//! # Spec grammar (`VR_FAULTS`)
//!
//! Comma-separated `key=value` entries:
//!
//! ```text
//! corrupt_bitstream=0.01        # P(corrupt a sample payload)
//! drop_rtp=0.05                 # P(drop an RTP packet at ingest)
//! stall_stage=kernel:20ms       # sleep once per pipeline run, at stage entry
//! io_fail=read:0.02             # P(transient storage read failure)
//! io_fail=write:0.02            # P(transient storage write failure)
//! panic_kernel=q4:frame37       # panic in the kernel of query q4 at frame 37
//! ```
//!
//! The seed comes from `VR_FAULT_SEED` (default 0). Decisions are made
//! by hashing a per-site decision counter with [`mix64`], so a plan
//! replays identically across runs; under a multi-threaded schedule
//! the *set* of decisions per site is identical even when the mapping
//! to specific samples varies.
//!
//! # Accounting
//!
//! Each injection increments a per-kind counter on the injector
//! ([`FaultInjector::injected`]); each *recovery* increments a global
//! [`Degradation`] counter (concealed frames, skipped samples/packets,
//! retries, contained panics). The CI chaos gate checks the two sides
//! against each other — e.g. every corrupted sample must show up as a
//! CRC-skipped sample, every injected panic as a contained one.

use crate::rng::{mix64, VrRng};
use crate::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// Which storage operation an `io_fail` applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    Read,
    Write,
}

/// A parsed `VR_FAULTS` schedule. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability of corrupting a demuxed sample payload.
    pub corrupt_bitstream: f64,
    /// Probability of dropping an RTP packet at online ingest.
    pub drop_rtp: f64,
    /// Stall `(stage label, duration)` once per pipeline run at the
    /// named stage's entry.
    pub stall_stage: Option<(String, Duration)>,
    /// Probability of a transient storage read failure.
    pub io_fail_read: f64,
    /// Probability of a transient storage write failure.
    pub io_fail_write: f64,
    /// Panic in the kernel stage of `(query label, frame index)`.
    pub panic_kernel: Option<(String, u64)>,
}

fn parse_prob(key: &str, v: &str) -> Result<f64> {
    let p: f64 = v
        .parse()
        .map_err(|_| Error::InvalidConfig(format!("{key}: bad probability {v:?}")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::InvalidConfig(format!("{key}: probability {p} outside [0, 1]")));
    }
    Ok(p)
}

impl FaultPlan {
    /// Parse a `VR_FAULTS` spec string (see the module docs for the
    /// grammar). An empty spec yields the empty plan.
    pub fn parse(spec: &str) -> Result<Self> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| Error::InvalidConfig(format!("fault entry {entry:?} has no '='")))?;
            match key {
                "corrupt_bitstream" => plan.corrupt_bitstream = parse_prob(key, value)?,
                "drop_rtp" => plan.drop_rtp = parse_prob(key, value)?,
                "io_fail" => {
                    let (op, p) = value.split_once(':').ok_or_else(|| {
                        Error::InvalidConfig(format!("io_fail wants read:<p> or write:<p>, got {value:?}"))
                    })?;
                    let p = parse_prob(key, p)?;
                    match op {
                        "read" => plan.io_fail_read = p,
                        "write" => plan.io_fail_write = p,
                        other => {
                            return Err(Error::InvalidConfig(format!(
                                "io_fail op must be read or write, got {other:?}"
                            )))
                        }
                    }
                }
                "stall_stage" => {
                    let (stage, dur) = value.split_once(':').ok_or_else(|| {
                        Error::InvalidConfig(format!("stall_stage wants <stage>:<N>ms, got {value:?}"))
                    })?;
                    let ms = dur
                        .strip_suffix("ms")
                        .and_then(|n| n.parse::<u64>().ok())
                        .ok_or_else(|| {
                            Error::InvalidConfig(format!("stall_stage duration {dur:?} is not <N>ms"))
                        })?;
                    plan.stall_stage = Some((stage.to_ascii_lowercase(), Duration::from_millis(ms)));
                }
                "panic_kernel" => {
                    let (query, frame) = value.split_once(':').ok_or_else(|| {
                        Error::InvalidConfig(format!(
                            "panic_kernel wants <query>:frame<N>, got {value:?}"
                        ))
                    })?;
                    let frame = frame
                        .strip_prefix("frame")
                        .and_then(|n| n.parse::<u64>().ok())
                        .ok_or_else(|| {
                            Error::InvalidConfig(format!("panic_kernel frame {frame:?} is not frame<N>"))
                        })?;
                    plan.panic_kernel = Some((query.to_ascii_lowercase(), frame));
                }
                other => {
                    return Err(Error::InvalidConfig(format!("unknown fault kind {other:?}")))
                }
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

/// Injected-fault counts, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub corrupt_bitstream: u64,
    pub drop_rtp: u64,
    pub stalls: u64,
    pub io_fail_read: u64,
    pub io_fail_write: u64,
    pub kernel_panics: u64,
}

/// Decision-site indices (each site draws from an independent,
/// seeded decision stream).
const SITE_CORRUPT: usize = 0;
const SITE_DROP_RTP: usize = 1;
const SITE_IO_READ: usize = 2;
const SITE_IO_WRITE: usize = 3;
const SITE_COUNT: usize = 4;

/// Salt mixed with the seed per decision site, so sites with the same
/// probability still draw distinct streams.
const SITE_SALT: [u64; SITE_COUNT] = [0xC0DE_0001, 0xC0DE_0002, 0xC0DE_0003, 0xC0DE_0004];

/// A seeded, deterministic fault injector bound to one [`FaultPlan`].
///
/// Every decision is a pure function of `(seed, site, n)` where `n` is
/// that site's decision counter — no wall clock, no OS entropy — so a
/// failing chaos run replays exactly from its `VR_FAULT_SEED`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    sites: [AtomicU64; SITE_COUNT],
    injected: [AtomicU64; 6],
}

impl FaultInjector {
    /// Build an injector from a plan and seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            seed,
            sites: Default::default(),
            injected: Default::default(),
        }
    }

    /// Parse `spec` and build an injector.
    pub fn from_spec(spec: &str, seed: u64) -> Result<Self> {
        Ok(Self::new(FaultPlan::parse(spec)?, seed))
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The deterministic seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draw the site's next decision: true with probability `p`.
    fn decide(&self, site: usize, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let n = self.sites[site].fetch_add(1, Ordering::Relaxed);
        let h = mix64(self.seed ^ SITE_SALT[site], n);
        ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Maybe corrupt a sample payload in place (a deterministic bit
    /// flip pattern derived from the decision index). Returns whether
    /// corruption was injected; a `true` always leaves `data` holding
    /// at least one flipped bit, so a CRC over the original payload is
    /// guaranteed to catch it.
    pub fn corrupt_sample(&self, data: &mut [u8]) -> bool {
        if data.is_empty() || suppressed() || !self.decide(SITE_CORRUPT, self.plan.corrupt_bitstream)
        {
            return false;
        }
        let n = self.injected[0].fetch_add(1, Ordering::Relaxed);
        let mut rng = VrRng::seed_from(mix64(self.seed ^ 0xBAD_B175, n));
        // Flip 1–4 bytes at random positions; XOR with a nonzero mask
        // keeps every flip observable.
        for _ in 0..rng.range(1, 4) {
            let pos = rng.below(data.len() as u64) as usize;
            data[pos] ^= (rng.next_u32() as u8) | 0x01;
        }
        true
    }

    /// Whether to drop the next RTP packet at ingest.
    pub fn drop_rtp_packet(&self) -> bool {
        if suppressed() || !self.decide(SITE_DROP_RTP, self.plan.drop_rtp) {
            return false;
        }
        self.injected[1].fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The stall to inject at entry of the named pipeline stage (fires
    /// once per call when the plan names the stage; callers invoke it
    /// once per pipeline run). The caller sleeps; the injector counts.
    pub fn stall(&self, stage: &str) -> Option<Duration> {
        if suppressed() {
            return None;
        }
        match &self.plan.stall_stage {
            Some((s, d)) if s == stage => {
                self.injected[2].fetch_add(1, Ordering::Relaxed);
                Some(*d)
            }
            _ => None,
        }
    }

    /// Maybe inject a transient I/O failure for `op`. Returns the
    /// error to surface (callers run under [`with_retry`], so an
    /// injected failure exercises the backoff path).
    pub fn io_fail(&self, op: IoOp) -> Option<Error> {
        let (site, p, slot) = match op {
            IoOp::Read => (SITE_IO_READ, self.plan.io_fail_read, 3),
            IoOp::Write => (SITE_IO_WRITE, self.plan.io_fail_write, 4),
        };
        if suppressed() || !self.decide(site, p) {
            return None;
        }
        self.injected[slot].fetch_add(1, Ordering::Relaxed);
        Some(Error::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected transient i/o fault",
        )))
    }

    /// Whether the kernel must panic now: the plan names this query
    /// label and frame index. The caller panics inside its containment
    /// scope; the injector counts the injection first.
    pub fn kernel_panic_due(&self, query_label: &str, frame: u64) -> bool {
        if suppressed() {
            return false;
        }
        match &self.plan.panic_kernel {
            Some((q, f)) if *f == frame && q.eq_ignore_ascii_case(query_label) => {
                self.injected[5].fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Injected-fault counts so far.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            corrupt_bitstream: self.injected[0].load(Ordering::Relaxed),
            drop_rtp: self.injected[1].load(Ordering::Relaxed),
            stalls: self.injected[2].load(Ordering::Relaxed),
            io_fail_read: self.injected[3].load(Ordering::Relaxed),
            io_fail_write: self.injected[4].load(Ordering::Relaxed),
            kernel_panics: self.injected[5].load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Global install point
// ---------------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SUPPRESS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: RwLock<Option<Arc<FaultInjector>>> = RwLock::new(None);

/// Install (or clear, with `None`) the process-global injector every
/// fault hook consults.
pub fn install(injector: Option<Arc<FaultInjector>>) {
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(injector.is_some(), Ordering::Release);
    *slot = injector;
}

/// The installed injector, if any. The inactive path is a single
/// atomic load, so fault hooks cost nothing when faults are off.
pub fn global() -> Option<Arc<FaultInjector>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Whether a global injector is installed (cheap).
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Whether injection is currently suppressed (see [`suppress`]).
fn suppressed() -> bool {
    SUPPRESS.load(Ordering::Acquire) > 0
}

/// Run `f` with injection suppressed — the driver's validation pass
/// re-executes queries through a reference engine, and those runs must
/// be fault-free so the achieved-PSNR comparison has a clean baseline.
/// Nesting is fine; the flag is a depth counter.
pub fn suppress<T>(f: impl FnOnce() -> T) -> T {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SUPPRESS.fetch_sub(1, Ordering::AcqRel);
        }
    }
    SUPPRESS.fetch_add(1, Ordering::AcqRel);
    let _g = Guard;
    f()
}

/// Build and install an injector from `VR_FAULTS` / `VR_FAULT_SEED`,
/// returning what was installed. A missing or empty `VR_FAULTS`
/// installs nothing; a malformed one is an error so CI cannot silently
/// run a chaos gate with no chaos.
pub fn init_from_env() -> Result<Option<Arc<FaultInjector>>> {
    let Ok(spec) = std::env::var("VR_FAULTS") else {
        return Ok(None);
    };
    if spec.trim().is_empty() {
        return Ok(None);
    }
    let seed = match std::env::var("VR_FAULT_SEED") {
        Ok(raw) => raw
            .trim()
            .parse::<u64>()
            .map_err(|_| Error::InvalidConfig(format!("VR_FAULT_SEED {raw:?} is not a u64")))?,
        Err(_) => 0,
    };
    let injector = Arc::new(FaultInjector::from_spec(&spec, seed)?);
    install(Some(Arc::clone(&injector)));
    Ok(Some(injector))
}

// ---------------------------------------------------------------------------
// Degradation accounting (the recovery side)
// ---------------------------------------------------------------------------

/// Global recovery counters: what the system *did* about injected (or
/// real) faults. Snapshot/delta these per query batch.
///
/// The counters live in the process-global [`crate::obs::metrics`]
/// registry under `degradation.*`, so they appear in metrics exports
/// alongside the pipeline telemetry; this struct caches the handles so
/// the hot recovery paths stay one relaxed atomic add.
#[derive(Debug)]
struct Degradation {
    concealed_frames: Arc<crate::obs::metrics::Counter>,
    skipped_samples: Arc<crate::obs::metrics::Counter>,
    skipped_packets: Arc<crate::obs::metrics::Counter>,
    io_retries: Arc<crate::obs::metrics::Counter>,
    io_give_ups: Arc<crate::obs::metrics::Counter>,
    stage_panics: Arc<crate::obs::metrics::Counter>,
    stalls_absorbed: Arc<crate::obs::metrics::Counter>,
}

fn degradation() -> &'static Degradation {
    static DEGRADATION: std::sync::OnceLock<Degradation> = std::sync::OnceLock::new();
    DEGRADATION.get_or_init(|| {
        let c = crate::obs::metrics::counter;
        Degradation {
            concealed_frames: c("degradation.concealed_frames"),
            skipped_samples: c("degradation.skipped_samples"),
            skipped_packets: c("degradation.skipped_packets"),
            io_retries: c("degradation.io_retries"),
            io_give_ups: c("degradation.io_give_ups"),
            stage_panics: c("degradation.stage_panics"),
            stalls_absorbed: c("degradation.stalls_absorbed"),
        }
    })
}

/// A point-in-time copy of the recovery counters; subtract snapshots
/// to get a batch's delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationSnapshot {
    /// Frames replaced by last-good-frame (or black) concealment.
    pub concealed_frames: u64,
    /// Samples the demuxer skipped on CRC/length validation failure.
    pub skipped_samples: u64,
    /// RTP packets lost and skipped over by the depacketizer.
    pub skipped_packets: u64,
    /// Transient storage failures retried with backoff.
    pub io_retries: u64,
    /// Storage operations that exhausted their retry budget.
    pub io_give_ups: u64,
    /// Stage panics contained by a pipeline watchdog.
    pub stage_panics: u64,
    /// Injected stage stalls absorbed (slept through) by a stage.
    pub stalls_absorbed: u64,
}

impl DegradationSnapshot {
    /// Counters accumulated since `earlier` (saturating).
    pub fn since(&self, earlier: &DegradationSnapshot) -> DegradationSnapshot {
        DegradationSnapshot {
            concealed_frames: self.concealed_frames.saturating_sub(earlier.concealed_frames),
            skipped_samples: self.skipped_samples.saturating_sub(earlier.skipped_samples),
            skipped_packets: self.skipped_packets.saturating_sub(earlier.skipped_packets),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
            io_give_ups: self.io_give_ups.saturating_sub(earlier.io_give_ups),
            stage_panics: self.stage_panics.saturating_sub(earlier.stage_panics),
            stalls_absorbed: self.stalls_absorbed.saturating_sub(earlier.stalls_absorbed),
        }
    }

    /// Whether any degradation was recorded.
    pub fn any(&self) -> bool {
        *self != DegradationSnapshot::default()
    }
}

/// Current recovery-counter totals.
pub fn degradation_snapshot() -> DegradationSnapshot {
    let d = degradation();
    DegradationSnapshot {
        concealed_frames: d.concealed_frames.get(),
        skipped_samples: d.skipped_samples.get(),
        skipped_packets: d.skipped_packets.get(),
        io_retries: d.io_retries.get(),
        io_give_ups: d.io_give_ups.get(),
        stage_panics: d.stage_panics.get(),
        stalls_absorbed: d.stalls_absorbed.get(),
    }
}

/// Record concealed frames.
pub fn note_concealed(n: u64) {
    degradation().concealed_frames.add(n);
}

/// Record demuxer-skipped samples.
pub fn note_skipped_sample() {
    degradation().skipped_samples.inc();
}

/// Record depacketizer-skipped packets.
pub fn note_skipped_packets(n: u64) {
    degradation().skipped_packets.add(n);
}

/// Record a contained stage panic.
pub fn note_stage_panic() {
    degradation().stage_panics.inc();
}

/// Record an absorbed stage stall.
pub fn note_stall_absorbed() {
    degradation().stalls_absorbed.inc();
}

// ---------------------------------------------------------------------------
// Bounded retry with deterministic backoff
// ---------------------------------------------------------------------------

/// Attempts (including the first) [`with_retry`] makes before giving
/// up on a transiently failing storage operation.
pub const RETRY_MAX_ATTEMPTS: u32 = 4;

/// Process-global backoff draw counter. Every backoff sleep consumes
/// one draw, so N threads retrying the *same* site at the *same*
/// attempt number pull N distinct jitter values instead of sleeping in
/// lockstep and re-colliding — the classic thundering herd. The
/// counter keeps the multiset of delays for a run a pure function of
/// `VR_FAULT_SEED` (like the injector's per-site decision streams, the
/// mapping of draws to threads may vary under a multi-threaded
/// schedule, but the values drawn do not).
static BACKOFF_DRAWS: AtomicU64 = AtomicU64::new(0);

/// Claim the next backoff draw index (see [`backoff_delay`]).
pub fn next_backoff_draw() -> u64 {
    BACKOFF_DRAWS.fetch_add(1, Ordering::Relaxed)
}

/// The backoff before retry number `attempt` (0-based): an exponential
/// base (0.5 ms doubling per attempt) plus seeded jitter in
/// `[0, base)` drawn from [`VrRng`] — deterministic for a given
/// `(seed, site, attempt, draw)`, so chaos runs replay their exact
/// schedule. `draw` is a per-sleep sequence number (normally from
/// [`next_backoff_draw`]) that decorrelates *concurrent* retries:
/// without it, every worker that hit the same transient at the same
/// attempt would back off by the same amount and stampede the resource
/// again in sync.
pub fn backoff_delay(seed: u64, site: u64, attempt: u32, draw: u64) -> Duration {
    let base_us = 500u64 << attempt.min(16);
    let mut rng = VrRng::seed_from(mix64(mix64(seed ^ site, attempt as u64), draw));
    Duration::from_micros(base_us + rng.below(base_us))
}

/// Whether an I/O error is plausibly transient (worth retrying).
/// Injected faults use `Interrupted`; permanent conditions (broken
/// pipe, permission denied, missing file) surface immediately so the
/// retry accounting stays attributable to actual transients.
fn is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// Run a storage operation with bounded retry-with-backoff. Transient
/// I/O failures are retried up to [`RETRY_MAX_ATTEMPTS`] total
/// attempts with [`backoff_delay`] sleeps between them; every retry is
/// recorded in the degradation counters, and exhausting the budget
/// records a give-up and surfaces the last error. Everything else
/// (not-found, corruption, broken pipe) propagates immediately —
/// retrying cannot help.
///
/// `site` names the call site (hashed into the jitter stream).
pub fn with_retry<T>(site: &str, mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let seed = global().map(|inj| inj.seed()).unwrap_or(0);
    let site_hash = site.bytes().fold(0u64, |h, b| mix64(h, b as u64));
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e @ Error::Io(_)) => {
                let transient = matches!(&e, Error::Io(io) if is_transient(io.kind()));
                if !transient {
                    return Err(e);
                }
                if attempt + 1 >= RETRY_MAX_ATTEMPTS {
                    degradation().io_give_ups.inc();
                    return Err(e);
                }
                degradation().io_retries.inc();
                {
                    let _span = crate::obs::trace::span("fault", "retry_backoff");
                    std::thread::sleep(backoff_delay(
                        seed,
                        site_hash,
                        attempt,
                        next_backoff_draw(),
                    ));
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "corrupt_bitstream=0.01,drop_rtp=0.05,stall_stage=kernel:20ms,\
             io_fail=read:0.02,io_fail=write:0.5,panic_kernel=q4:frame37",
        )
        .unwrap();
        assert_eq!(plan.corrupt_bitstream, 0.01);
        assert_eq!(plan.drop_rtp, 0.05);
        assert_eq!(plan.stall_stage, Some(("kernel".into(), Duration::from_millis(20))));
        assert_eq!(plan.io_fail_read, 0.02);
        assert_eq!(plan.io_fail_write, 0.5);
        assert_eq!(plan.panic_kernel, Some(("q4".into(), 37)));
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "nonsense=1",
            "corrupt_bitstream=2.0",
            "corrupt_bitstream=x",
            "drop_rtp",
            "io_fail=0.5",
            "io_fail=delete:0.5",
            "stall_stage=kernel",
            "stall_stage=kernel:20s",
            "panic_kernel=q4",
            "panic_kernel=q4:37",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_replayable() {
        let plan = FaultPlan::parse("corrupt_bitstream=0.25").unwrap();
        let draw = |seed: u64| {
            let inj = FaultInjector::new(plan.clone(), seed);
            let mut data = vec![0u8; 64];
            (0..500).map(|_| inj.corrupt_sample(&mut data)).collect::<Vec<bool>>()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay identically");
        assert_ne!(draw(7), draw(8), "seeds must differ");
        let hits = draw(7).iter().filter(|&&b| b).count();
        assert!((50..200).contains(&hits), "~25% of 500 expected, got {hits}");
    }

    #[test]
    fn corruption_always_changes_the_payload() {
        let inj = FaultInjector::from_spec("corrupt_bitstream=1.0", 3).unwrap();
        for len in [1usize, 2, 7, 100] {
            let orig = vec![0xA5u8; len];
            let mut data = orig.clone();
            assert!(inj.corrupt_sample(&mut data));
            assert_ne!(data, orig, "len {len}: injected corruption must be observable");
        }
        assert_eq!(inj.injected().corrupt_bitstream, 4);
        // Empty payloads cannot be corrupted.
        assert!(!inj.corrupt_sample(&mut []));
    }

    #[test]
    fn io_fail_counts_per_op() {
        let inj = FaultInjector::from_spec("io_fail=read:1.0", 0).unwrap();
        assert!(inj.io_fail(IoOp::Read).is_some());
        assert!(inj.io_fail(IoOp::Write).is_none());
        assert_eq!(inj.injected().io_fail_read, 1);
        assert_eq!(inj.injected().io_fail_write, 0);
    }

    #[test]
    fn stall_matches_stage_label_only() {
        let inj = FaultInjector::from_spec("stall_stage=kernel:5ms", 0).unwrap();
        assert_eq!(inj.stall("kernel"), Some(Duration::from_millis(5)));
        assert_eq!(inj.stall("decode"), None);
        assert_eq!(inj.injected().stalls, 1);
    }

    #[test]
    fn kernel_panic_targets_query_and_frame() {
        let inj = FaultInjector::from_spec("panic_kernel=q4:frame3", 0).unwrap();
        assert!(!inj.kernel_panic_due("q1", 3));
        assert!(!inj.kernel_panic_due("q4", 2));
        assert!(inj.kernel_panic_due("Q4", 3), "label match is case-insensitive");
        assert_eq!(inj.injected().kernel_panics, 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        for attempt in 0..RETRY_MAX_ATTEMPTS {
            let a = backoff_delay(1, 2, attempt, 0);
            assert_eq!(a, backoff_delay(1, 2, attempt, 0), "jitter must be seeded");
            let base = Duration::from_micros(500u64 << attempt);
            assert!(a >= base && a < base * 2, "attempt {attempt}: {a:?}");
        }
        assert_ne!(
            backoff_delay(1, 2, 0, 0),
            backoff_delay(1, 3, 0, 0),
            "sites draw distinct jitter"
        );
    }

    #[test]
    fn backoff_draws_desynchronize_concurrent_retries() {
        // The thundering-herd fix: the same (seed, site, attempt) at
        // distinct draw indices must yield distinct delays, all still
        // inside the attempt's [base, 2*base) window.
        let delays: Vec<Duration> = (0..16).map(|draw| backoff_delay(9, 4, 1, draw)).collect();
        let base = Duration::from_micros(1000);
        for (draw, d) in delays.iter().enumerate() {
            assert!(*d >= base && *d < base * 2, "draw {draw}: {d:?} outside window");
        }
        let mut unique = delays.clone();
        unique.sort();
        unique.dedup();
        assert!(
            unique.len() > 12,
            "16 draws collapsed to {} distinct delays — herd not broken",
            unique.len()
        );
        // Replayable: the draw index fully determines the jitter.
        assert_eq!(backoff_delay(9, 4, 1, 7), backoff_delay(9, 4, 1, 7));
        // Seed changes move every draw.
        assert_ne!(backoff_delay(9, 4, 1, 7), backoff_delay(10, 4, 1, 7));
        // The global draw counter is strictly monotonic.
        let a = next_backoff_draw();
        let b = next_backoff_draw();
        assert!(b > a);
    }

    #[test]
    fn with_retry_retries_transients_and_gives_up() {
        let mut calls = 0;
        let out: Result<u32> = with_retry("test-ok", || {
            calls += 1;
            if calls < 3 {
                Err(Error::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "x")))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<u32> = with_retry("test-exhaust", || {
            calls += 1;
            Err(Error::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "x")))
        });
        assert!(out.is_err());
        assert_eq!(calls, RETRY_MAX_ATTEMPTS);

        // Non-transient errors pass straight through.
        let mut calls = 0;
        let out: Result<u32> = with_retry("test-hard", || {
            calls += 1;
            Err(Error::NotFound("gone".into()))
        });
        assert!(matches!(out, Err(Error::NotFound(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn suppress_disables_injection() {
        let inj = FaultInjector::from_spec("corrupt_bitstream=1.0,drop_rtp=1.0", 0).unwrap();
        suppress(|| {
            let mut data = vec![1u8; 8];
            assert!(!inj.corrupt_sample(&mut data));
            assert!(!inj.drop_rtp_packet());
            // Nesting keeps suppression on.
            suppress(|| assert!(!inj.drop_rtp_packet()));
            assert!(!inj.drop_rtp_packet());
        });
        assert!(inj.drop_rtp_packet(), "suppression must lift on exit");
    }

    #[test]
    fn degradation_snapshot_deltas() {
        let before = degradation_snapshot();
        note_concealed(3);
        note_skipped_sample();
        note_skipped_packets(2);
        note_stage_panic();
        note_stall_absorbed();
        let delta = degradation_snapshot().since(&before);
        assert_eq!(delta.concealed_frames, 3);
        assert_eq!(delta.skipped_samples, 1);
        assert_eq!(delta.skipped_packets, 2);
        assert_eq!(delta.stage_panics, 1);
        assert_eq!(delta.stalls_absorbed, 1);
        assert!(delta.any());
        assert!(!DegradationSnapshot::default().any());
    }

    #[test]
    fn env_init_rejects_malformed_spec() {
        // Do not touch the real environment of other tests: only the
        // error path of an explicit bad spec is checked here.
        assert!(FaultInjector::from_spec("corrupt_bitstream=nope", 0).is_err());
    }
}
