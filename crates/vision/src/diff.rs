//! Frame-difference detection — the cheap first stage of a
//! NoScope-style inference cascade.

use vr_frame::Frame;

/// Tracks the previous frame and reports how much a new frame
/// differs. The cascade engine consults this before deciding whether
/// to run the expensive detector.
#[derive(Debug, Default)]
pub struct FrameDiff {
    previous: Option<Frame>,
}

impl FrameDiff {
    /// New detector with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean absolute luma difference against the previous frame
    /// (`f64::MAX` for the first frame, forcing a full run), then
    /// remembers `frame`.
    pub fn step(&mut self, frame: &Frame) -> f64 {
        let score = match &self.previous {
            Some(prev)
                if prev.width() == frame.width() && prev.height() == frame.height() =>
            {
                let total: u64 = prev
                    .y
                    .iter()
                    .zip(&frame.y)
                    .map(|(&a, &b)| a.abs_diff(b) as u64)
                    .sum();
                total as f64 / frame.y.len() as f64
            }
            _ => f64::MAX,
        };
        self.previous = Some(frame.clone());
        score
    }

    /// Forget the history (e.g. at a video boundary).
    pub fn reset(&mut self) {
        self.previous = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_frame::Yuv;

    #[test]
    fn first_frame_forces_full_run() {
        let mut d = FrameDiff::new();
        assert_eq!(d.step(&Frame::new(16, 16)), f64::MAX);
    }

    #[test]
    fn identical_frames_score_zero() {
        let mut d = FrameDiff::new();
        let f = Frame::filled(16, 16, Yuv::gray(90));
        d.step(&f);
        assert_eq!(d.step(&f), 0.0);
    }

    #[test]
    fn difference_scales_with_change() {
        let mut d = FrameDiff::new();
        let a = Frame::filled(16, 16, Yuv::gray(90));
        let mut small = a.clone();
        small.set_y(0, 0, 200); // one changed pixel
        let big = Frame::filled(16, 16, Yuv::gray(200));
        d.step(&a);
        let s_small = d.step(&small);
        d.reset();
        d.step(&a);
        let s_big = d.step(&big);
        assert!(s_small > 0.0 && s_small < 1.0);
        assert!((s_big - 110.0).abs() < 1.0);
    }

    #[test]
    fn resolution_change_forces_full_run() {
        let mut d = FrameDiff::new();
        d.step(&Frame::new(16, 16));
        assert_eq!(d.step(&Frame::new(32, 32)), f64::MAX);
    }
}
