//! The YOLO stand-in: a real pixel-level object detector.
//!
//! Pipeline: (1) compute a difference-of-surround foreground mask
//! (deviation from a box-downsampled local estimate over luma and
//! chroma, with a vegetation veto), OR-ed with slow-EMA temporal
//! background subtraction once the model is warm; (2) extract
//! connected components; (3) trim the surround halo from each
//! component's box by row/column density; (4) merge fragments of
//! large objects; (5) classify geometrically (pedestrians tall,
//! vehicles wide), score by shape quality and saturation, and NMS.
//! A [`CostModel`] adds CNN-scale arithmetic per frame (with a
//! network-input floor — see [`NETWORK_INPUT_PIXELS`]).

use crate::cost::CostModel;
use crate::detect::{nms, Detection};

/// The network's fixed input raster (YOLOv2 resizes every frame to
/// 416×416 before inference, so per-frame cost has a floor that does
/// not shrink with small frames).
pub const NETWORK_INPUT_PIXELS: usize = 416 * 416;
use vr_frame::Frame;
use vr_geom::Rect;
use vr_scene::ObjectClass;

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct YoloConfig {
    /// Synthetic compute per pixel of network input (see
    /// [`CostModel`]); the input is at least
    /// [`NETWORK_INPUT_PIXELS`]. The default is calibrated so Q2(c)
    /// dominates the microbenchmarks the way a real CNN does
    /// (Figure 5), at roughly 0.3 % of YOLOv2's true 8.5 GMAC/frame —
    /// consistent with the repository's overall scale-down.
    pub macs_per_pixel: f64,
    /// Foreground threshold on combined luma/chroma deviation.
    pub fg_threshold: u32,
    /// Minimum blob area in pixels.
    pub min_area: u32,
    /// Whether to maintain a temporal background model across frames
    /// (improves moving-object recall on video).
    pub temporal_background: bool,
}

impl Default for YoloConfig {
    fn default() -> Self {
        Self { macs_per_pixel: 120.0, fg_threshold: 42, min_area: 36, temporal_background: true }
    }
}

impl YoloConfig {
    /// A configuration with no synthetic compute (for tests and for
    /// the cascade's cheap specialized model).
    pub fn fast() -> Self {
        Self { macs_per_pixel: 0.0, ..Default::default() }
    }
}

/// Shrink a component's bounding box by trimming leading/trailing
/// rows and columns whose pixel density is below 35 % of the densest
/// row/column — the sparse ring a difference-of-surround mask grows
/// around hard edges.
fn trim_sparse_border(pixels: &[u32], w: u32, rect: Rect) -> Rect {
    let bw = rect.width() as usize;
    let bh = rect.height() as usize;
    if bw == 0 || bh == 0 {
        return rect;
    }
    let mut cols = vec![0u32; bw];
    let mut rows = vec![0u32; bh];
    for &idx in pixels {
        let x = (idx % w) as i32 - rect.x0;
        let y = (idx / w) as i32 - rect.y0;
        if x >= 0 && (x as usize) < bw && y >= 0 && (y as usize) < bh {
            cols[x as usize] += 1;
            rows[y as usize] += 1;
        }
    }
    let col_peak = *cols.iter().max().unwrap_or(&0);
    let row_peak = *rows.iter().max().unwrap_or(&0);
    let col_min = (col_peak as f32 * 0.35) as u32;
    let row_min = (row_peak as f32 * 0.35) as u32;
    let x0 = cols.iter().position(|&c| c > col_min).unwrap_or(0);
    let x1 = bw - cols.iter().rev().position(|&c| c > col_min).unwrap_or(0);
    let y0 = rows.iter().position(|&c| c > row_min).unwrap_or(0);
    let y1 = bh - rows.iter().rev().position(|&c| c > row_min).unwrap_or(0);
    if x0 >= x1 || y0 >= y1 {
        return rect;
    }
    Rect::new(
        rect.x0 + x0 as i32,
        rect.y0 + y0 as i32,
        rect.x0 + x1 as i32,
        rect.y0 + y1 as i32,
    )
}

/// Union-merge same-class detections whose slightly-inflated boxes
/// overlap, iterating to a fixpoint.
fn merge_fragments(mut dets: Vec<Detection>) -> Vec<Detection> {
    loop {
        let mut merged_any = false;
        let mut out: Vec<Detection> = Vec::with_capacity(dets.len());
        'outer: for d in dets.drain(..) {
            for o in out.iter_mut() {
                if o.class == d.class
                    && !o.rect.inflated(3).intersect(&d.rect.inflated(3)).is_empty()
                {
                    o.rect = o.rect.union_bounds(&d.rect);
                    o.score = o.score.max(d.score);
                    merged_any = true;
                    continue 'outer;
                }
            }
            out.push(d);
        }
        dets = out;
        if !merged_any {
            return dets;
        }
    }
}

/// The detector. Stateful: carries the temporal background model.
pub struct YoloDetector {
    cfg: YoloConfig,
    cost: CostModel,
    /// Running per-pixel luma background (same resolution as input).
    background: Option<Vec<f32>>,
    /// Frames folded into the background so far.
    warmup: u32,
}

impl YoloDetector {
    /// Create a detector.
    pub fn new(cfg: YoloConfig) -> Self {
        let cost = CostModel::new(cfg.macs_per_pixel);
        Self { cfg, cost, background: None, warmup: 0 }
    }

    /// Reset temporal state (video boundary).
    pub fn reset(&mut self) {
        self.background = None;
        self.warmup = 0;
    }

    /// Whether the temporal background model has converged enough to
    /// drive detection (two frames fold the static scene in).
    fn background_ready(&self) -> bool {
        self.cfg.temporal_background && self.warmup >= 2 && self.background.is_some()
    }

    /// Detect objects in a frame.
    pub fn detect(&mut self, frame: &Frame) -> Vec<Detection> {
        let (w, h) = (frame.width(), frame.height());
        self.cost.run(((w * h) as usize).max(NETWORK_INPUT_PIXELS));

        // Local surround estimate: the frame box-downsampled 8x and
        // bilinearly upsampled back. Pixels of *small* structures
        // (vehicles, pedestrians) deviate from their surround; the
        // interiors of large structures (roads, facades, sky) do not,
        // and their edges survive only as slivers the shape filters
        // drop. A difference-of-surround blob detector, in effect.
        let surround = {
            let ds = vr_frame::ops::downsample(frame, (w / 16).max(2), (h / 16).max(2));
            vr_frame::ops::interpolate_bilinear(&ds, w, h)
        };

        // Foreground mask. The primary cue is chromatic: scene
        // objects (vehicle bodies, clothing) are saturated while the
        // static world (asphalt, concrete, facades) is near-neutral —
        // except vegetation, which gets an explicit green veto. A
        // temporal background-subtraction cue (slow EMA) is OR-ed in
        // once warm, catching low-saturation movers.
        let mut mask = vec![false; (w * h) as usize];
        let bg_ready = self.background_ready();
        for y in 0..h {
            for x in 0..w {
                let p = frame.get(x, y);
                let sp = surround.get(x, y);
                let dev = (p.y as i32 - sp.y as i32).unsigned_abs()
                    + (p.u as i32 - sp.u as i32).unsigned_abs() * 2
                    + (p.v as i32 - sp.v as i32).unsigned_abs() * 2;
                // Vegetation veto: terrain and tree canopies render
                // green (u and v both below neutral).
                let greenish = p.u < 124 && p.v < 124;
                let mut fg = !greenish && dev > self.cfg.fg_threshold;
                if !fg && bg_ready {
                    let bg = self.background.as_ref().expect("ready");
                    let tdev = (p.y as f32 - bg[(y * w + x) as usize]).abs();
                    fg = tdev > (self.cfg.fg_threshold / 2) as f32;
                }
                mask[(y * w + x) as usize] = fg;
            }
        }

        // Temporal background update (slow EMA so transient movers do
        // not become background), after the mask.
        if self.cfg.temporal_background {
            match &mut self.background {
                Some(bg) if bg.len() == frame.y.len() => {
                    for (b, &p) in bg.iter_mut().zip(&frame.y) {
                        *b += 0.05 * (p as f32 - *b);
                    }
                }
                _ => {
                    self.background =
                        Some(frame.y.iter().map(|&p| p as f32).collect());
                }
            }
            self.warmup = self.warmup.saturating_add(1);
        }

        // Connected components (4-connectivity, iterative BFS).
        let mut seen = vec![false; mask.len()];
        let mut detections = Vec::new();
        let mut queue = Vec::new();
        for start in 0..mask.len() {
            if !mask[start] || seen[start] {
                continue;
            }
            seen[start] = true;
            queue.clear();
            queue.push(start as u32);
            let mut min_x = u32::MAX;
            let mut min_y = u32::MAX;
            let mut max_x = 0u32;
            let mut max_y = 0u32;
            let mut count = 0u32;
            let mut saturation_sum = 0u64;
            let mut head = 0usize;
            while head < queue.len() {
                let idx = queue[head];
                head += 1;
                let x = idx % w;
                let y = idx / w;
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
                count += 1;
                let p = frame.get(x, y);
                saturation_sum += (p.u.abs_diff(128) as u64) + (p.v.abs_diff(128) as u64);
                let neighbors = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (nx, ny) in neighbors {
                    if nx < w && ny < h {
                        let ni = (ny * w + nx) as usize;
                        if mask[ni] && !seen[ni] {
                            seen[ni] = true;
                            queue.push(ni as u32);
                        }
                    }
                }
            }
            if count < self.cfg.min_area {
                continue;
            }
            // Trim the surround-difference halo: drop border rows and
            // columns whose mask density is far below the peak.
            let raw = Rect::new(min_x as i32, min_y as i32, max_x as i32 + 1, max_y as i32 + 1);
            let rect = trim_sparse_border(&queue, w, raw);
            let bw = rect.width().max(1);
            let bh = rect.height().max(1);
            // Degenerate slivers (lane markings, rain streaks) out.
            if bw < 3 || bh < 3 {
                continue;
            }
            let fill = count as f32 / (bw * bh) as f32;
            if fill < 0.25 {
                continue;
            }
            // Extreme aspect ratios are structure, not objects
            // (rooflines, lane markings, poles).
            let aspect = bw as f32 / bh as f32;
            if !(0.22..=4.5).contains(&aspect) {
                continue;
            }
            let class = if bh as f32 > 1.35 * bw as f32 {
                ObjectClass::Pedestrian
            } else {
                ObjectClass::Vehicle
            };
            // Rank by shape quality AND saturation: the world's static
            // structure is near-neutral, so saturated blobs are far
            // more likely to be vehicles/pedestrians.
            let saturation = (saturation_sum as f32 / count as f32 / 45.0).min(1.0);
            let score = (fill * 0.25
                + saturation * 0.45
                + 0.3 * (count as f32 / 3000.0).min(1.0))
            .clamp(0.05, 0.99);
            detections.push(Detection { class, rect, score });
        }
        // Large objects exceed the surround scale and fragment into
        // several blobs; merge same-class boxes that touch when grown
        // slightly.
        let merged = merge_fragments(detections);
        nms(merged, 0.45)
    }

    /// Diagnostics: accumulated cost-model checksum.
    pub fn cost_checksum(&self) -> f32 {
        self.cost.checksum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_frame::Yuv;

    /// A gray frame with one bright wide box and one tall colored box.
    fn scene_frame() -> Frame {
        let mut f = Frame::filled(128, 128, Yuv::gray(100));
        // Vehicle-ish: wide bright blob.
        for y in 60..76 {
            for x in 20..52 {
                f.set(x, y, Yuv::new(200, 100, 180));
            }
        }
        // Pedestrian-ish: tall narrow blob (clothing chroma must not
        // trip the vegetation veto, i.e. not green).
        for y in 30..58 {
            for x in 90..100 {
                f.set(x, y, Yuv::new(160, 80, 170));
            }
        }
        f
    }

    #[test]
    fn detects_and_classifies_blobs() {
        let mut det = YoloDetector::new(YoloConfig::fast());
        let out = det.detect(&scene_frame());
        assert!(out.len() >= 2, "expected two blobs, got {out:?}");
        let vehicle = out
            .iter()
            .find(|d| d.rect.contains(35, 68))
            .expect("wide blob found");
        assert_eq!(vehicle.class, ObjectClass::Vehicle);
        let ped = out
            .iter()
            .find(|d| d.rect.contains(94, 44))
            .expect("tall blob found");
        assert_eq!(ped.class, ObjectClass::Pedestrian);
    }

    #[test]
    fn blank_frame_detects_nothing() {
        let mut det = YoloDetector::new(YoloConfig::fast());
        let out = det.detect(&Frame::filled(64, 64, Yuv::gray(90)));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn detection_is_deterministic() {
        let mut a = YoloDetector::new(YoloConfig::fast());
        let mut b = YoloDetector::new(YoloConfig::fast());
        assert_eq!(a.detect(&scene_frame()), b.detect(&scene_frame()));
    }

    #[test]
    fn bounding_boxes_are_tight() {
        let mut det = YoloDetector::new(YoloConfig::fast());
        let out = det.detect(&scene_frame());
        let vehicle = out.iter().find(|d| d.rect.contains(35, 68)).unwrap();
        let truth = Rect::new(20, 60, 52, 76);
        assert!(
            vehicle.rect.iou(&truth) > 0.5,
            "IoU {} for {:?} vs {:?}",
            vehicle.rect.iou(&truth),
            vehicle.rect,
            truth
        );
    }

    #[test]
    fn temporal_model_flags_movers() {
        let mut det = YoloDetector::new(YoloConfig::fast());
        let base = Frame::filled(64, 64, Yuv::gray(100));
        for _ in 0..5 {
            det.detect(&base);
        }
        // A modest-contrast mover that spatial cues alone would rank
        // borderline becomes clearly foreground via the temporal term.
        let mut moved = base.clone();
        for y in 20..36 {
            for x in 10..34 {
                moved.set_y(x, y, 130);
            }
        }
        let out = det.detect(&moved);
        assert!(!out.is_empty(), "temporal detection failed");
        det.reset();
        // After reset the background re-seeds from the next frame.
        let out2 = det.detect(&moved);
        // Spatial-only path may or may not fire at this contrast; the
        // call must simply not panic and stay deterministic.
        let _ = out2;
    }
}
