//! The oracle detector: ground truth plus configurable imperfection.
//!
//! Used by the VCD to generate reference bounding boxes for semantic
//! validation (perfect mode), and by the quality experiment (§6.3.1)
//! to model a detector with realistic noise characteristics.

use crate::detect::Detection;
use vr_base::VrRng;
use vr_scene::groundtruth::FrameTruth;
use vr_scene::ObjectClass;

/// Ground-truth-backed detector with seeded jitter and error rates.
#[derive(Debug, Clone)]
pub struct OracleDetector {
    /// Std-dev of box-corner jitter in pixels.
    pub jitter_px: f64,
    /// Probability of missing a visible object.
    pub miss_rate: f64,
    /// Expected number of spurious detections per frame.
    pub false_positives_per_frame: f64,
    rng: VrRng,
}

impl OracleDetector {
    /// A perfect oracle (exact ground truth, no errors).
    pub fn perfect() -> Self {
        Self { jitter_px: 0.0, miss_rate: 0.0, false_positives_per_frame: 0.0, rng: VrRng::seed_from(0) }
    }

    /// A noisy oracle seeded for reproducibility.
    pub fn noisy(jitter_px: f64, miss_rate: f64, false_positives_per_frame: f64, seed: u64) -> Self {
        Self {
            jitter_px,
            miss_rate,
            false_positives_per_frame,
            rng: VrRng::seed_from(seed),
        }
    }

    /// Produce detections for a frame's ground truth. `width`/`height`
    /// bound any generated false positives.
    pub fn detect(&mut self, truth: &FrameTruth, width: u32, height: u32) -> Vec<Detection> {
        let mut out = Vec::new();
        for obj in &truth.objects {
            if obj.occluded {
                continue;
            }
            if self.miss_rate > 0.0 && self.rng.chance(self.miss_rate) {
                continue;
            }
            let mut rect = obj.rect;
            if self.jitter_px > 0.0 {
                let j = self.jitter_px;
                rect = vr_geom::Rect::new(
                    rect.x0 + (self.rng.normal() * j) as i32,
                    rect.y0 + (self.rng.normal() * j) as i32,
                    rect.x1 + (self.rng.normal() * j) as i32,
                    rect.y1 + (self.rng.normal() * j) as i32,
                )
                .clipped(width, height);
                if rect.is_empty() {
                    continue;
                }
            }
            // Confidence decays with distance, as real detectors'
            // scores do for small objects.
            let score = (1.0 - obj.distance as f64 / 400.0).clamp(0.3, 0.99) as f32;
            out.push(Detection { class: obj.class, rect, score });
        }
        // Poisson-ish false positives: one Bernoulli trial per unit of
        // expectation.
        let mut fp_budget = self.false_positives_per_frame;
        while fp_budget > 0.0 {
            let p = fp_budget.min(1.0);
            if self.rng.chance(p) {
                let w = self.rng.range(8, 40) as u32;
                let h = self.rng.range(8, 40) as u32;
                let x = self.rng.range(0, (width.saturating_sub(w)) as usize) as i32;
                let y = self.rng.range(0, (height.saturating_sub(h)) as usize) as i32;
                let class = if self.rng.chance(0.5) {
                    ObjectClass::Vehicle
                } else {
                    ObjectClass::Pedestrian
                };
                out.push(Detection {
                    class,
                    rect: vr_geom::Rect::from_origin_size(x, y, w, h),
                    score: self.rng.range_f64(0.3, 0.6) as f32,
                });
            }
            fp_budget -= 1.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_scene::groundtruth::TruthObject;

    fn truth_with(n: usize, occluded: usize) -> FrameTruth {
        let mut objects = Vec::new();
        for i in 0..n + occluded {
            objects.push(TruthObject {
                class: ObjectClass::Vehicle,
                entity_id: i as u32,
                rect: vr_geom::Rect::from_origin_size(10 * i as i32, 10, 20, 12),
                distance: 30.0,
                occluded: i >= n,
                plate: None,
                plate_visible: false,
            });
        }
        FrameTruth { objects }
    }

    #[test]
    fn perfect_oracle_returns_exact_visible_boxes() {
        let truth = truth_with(3, 2);
        let mut oracle = OracleDetector::perfect();
        let out = oracle.detect(&truth, 640, 480);
        assert_eq!(out.len(), 3, "occluded objects must be skipped");
        for (d, t) in out.iter().zip(&truth.objects) {
            assert_eq!(d.rect, t.rect);
        }
    }

    #[test]
    fn miss_rate_drops_detections() {
        let truth = truth_with(100, 0);
        let mut oracle = OracleDetector::noisy(0.0, 0.3, 0.0, 7);
        let out = oracle.detect(&truth, 2000, 480);
        assert!(out.len() < 90, "expected ~70 kept, got {}", out.len());
        assert!(out.len() > 50);
    }

    #[test]
    fn jitter_moves_but_overlaps() {
        let truth = truth_with(50, 0);
        let mut oracle = OracleDetector::noisy(1.5, 0.0, 0.0, 8);
        let out = oracle.detect(&truth, 2000, 480);
        assert_eq!(out.len(), 50);
        let mut moved = 0;
        for (d, t) in out.iter().zip(&truth.objects) {
            assert!(d.rect.iou(&t.rect) > 0.4, "jitter too large");
            if d.rect != t.rect {
                moved += 1;
            }
        }
        assert!(moved > 30, "jitter should move most boxes");
    }

    #[test]
    fn false_positives_appear() {
        let truth = FrameTruth::default();
        let mut oracle = OracleDetector::noisy(0.0, 0.0, 2.0, 9);
        let mut total = 0;
        for _ in 0..50 {
            total += oracle.detect(&truth, 640, 480).len();
        }
        // Expect ~100; allow a wide band.
        assert!((50..170).contains(&total), "got {total} false positives");
    }

    #[test]
    fn seeded_oracle_is_reproducible() {
        let truth = truth_with(20, 0);
        let mut a = OracleDetector::noisy(2.0, 0.2, 1.0, 42);
        let mut b = OracleDetector::noisy(2.0, 0.2, 1.0, 42);
        assert_eq!(a.detect(&truth, 640, 480), b.detect(&truth, 640, 480));
    }
}
