//! Computer-vision substrate: the stand-ins for YOLO and OpenALPR.
//!
//! The benchmark "requires that all VDBMSs use specified,
//! state-of-the-art algorithms, and focuses on evaluating the
//! execution performance of queries that need to apply those
//! algorithms rather than their quality" (§4). Accordingly this crate
//! provides:
//!
//! * [`YoloDetector`] — a *real* pixel-level detector (background
//!   modelling → foreground connected components → geometric
//!   classification) wrapped in a deterministic [`cost::CostModel`]
//!   calibrated to CNN-like per-frame compute, so query runtimes have
//!   the right shape (Q2(c) dominates Figures 5/6) *and* the right
//!   data-dependence (NoScope-style difference cascades genuinely
//!   save work on static scenes).
//! * [`OracleDetector`] — scene-geometry ground truth plus seeded
//!   jitter/drop-out; the VCD uses it to produce reference boxes for
//!   semantic validation.
//! * [`AlprRecognizer`] — license-plate localization and glyph
//!   decoding from pixels (plates are rendered as 5×7 glyph bitmaps).
//! * [`eval`] — precision/recall/average-precision, used to reproduce
//!   the §6.3.1 video-quality experiment.

pub mod alpr;
pub mod cost;
pub mod detect;
pub mod diff;
pub mod embed;
pub mod eval;
pub mod oracle;
pub mod track;
pub mod yolo;

pub use alpr::AlprRecognizer;
pub use detect::{nms, Detection};
pub use embed::{embed_tracklet, TRACK_EMBED_DIM};
pub use oracle::OracleDetector;
pub use track::{associate, Tracklet, TrackerConfig};
pub use yolo::{YoloConfig, YoloDetector};
