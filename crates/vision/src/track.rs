//! Greedy IoU tracklet association (the ingest half of Q8-style
//! tracking, run once per video over per-frame detections).
//!
//! Detections arrive as per-frame `(class, rect)` lists — either from
//! the metadata ground-truth track or from a pixel detector — with no
//! identities attached; association stitches them into tracklets. The
//! matcher is greedy best-IoU with a class gate and a bounded occlusion
//! gap, and every choice point is ordered deterministically (IoU
//! descending, then track id, then detection index), so the same
//! detections always yield the same tracklets in the same order.

use vr_geom::Rect;
use vr_scene::entity::ObjectClass;

/// Association knobs.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Minimum IoU between a detection and a track's last box.
    pub iou_threshold: f64,
    /// How many consecutive frames a track may go unobserved before it
    /// closes.
    pub max_gap: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { iou_threshold: 0.25, max_gap: 8 }
    }
}

/// One associated object instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Tracklet {
    /// Per-video id in creation order.
    pub id: u32,
    pub class: ObjectClass,
    /// Observations as (frame, box), strictly increasing in frame.
    pub observations: Vec<(u32, Rect)>,
}

impl Tracklet {
    pub fn first_frame(&self) -> u32 {
        self.observations.first().expect("tracklets are never empty").0
    }

    pub fn last_frame(&self) -> u32 {
        self.observations.last().expect("tracklets are never empty").0
    }

    pub fn frames(&self) -> impl Iterator<Item = u32> + '_ {
        self.observations.iter().map(|&(f, _)| f)
    }
}

/// Associate per-frame detections into tracklets. `frames[i]` holds the
/// detections of frame `i`.
pub fn associate(frames: &[Vec<(ObjectClass, Rect)>], cfg: TrackerConfig) -> Vec<Tracklet> {
    let mut tracks: Vec<Tracklet> = Vec::new();
    // Tracks still eligible for extension, by index into `tracks`.
    let mut active: Vec<usize> = Vec::new();

    for (frame_idx, dets) in frames.iter().enumerate() {
        let frame = frame_idx as u32;
        // A track last seen at frame `l` has `frame - l - 1` unobserved
        // frames; it stays eligible while that gap is within max_gap.
        active.retain(|&t| frame - tracks[t].last_frame() <= cfg.max_gap + 1);

        // Score every (active track, detection) pair above the gate.
        struct Pair {
            iou: f64,
            track: usize,
            det: usize,
        }
        let mut pairs: Vec<Pair> = Vec::new();
        for &t in &active {
            let last_box = tracks[t].observations.last().unwrap().1;
            for (d, &(class, rect)) in dets.iter().enumerate() {
                if class != tracks[t].class {
                    continue;
                }
                let iou = last_box.iou(&rect);
                if iou >= cfg.iou_threshold {
                    pairs.push(Pair { iou, track: t, det: d });
                }
            }
        }
        // Greedy best-first with a total, deterministic order.
        pairs.sort_by(|a, b| {
            b.iou
                .total_cmp(&a.iou)
                .then(a.track.cmp(&b.track))
                .then(a.det.cmp(&b.det))
        });
        let mut track_taken = vec![false; tracks.len()];
        let mut det_taken = vec![false; dets.len()];
        for p in pairs {
            if track_taken[p.track] || det_taken[p.det] {
                continue;
            }
            track_taken[p.track] = true;
            det_taken[p.det] = true;
            tracks[p.track].observations.push((frame, dets[p.det].1));
        }
        // Unmatched detections seed new tracks, in detection order.
        for (d, &(class, rect)) in dets.iter().enumerate() {
            if det_taken[d] {
                continue;
            }
            let id = tracks.len() as u32;
            tracks.push(Tracklet { id, class, observations: vec![(frame, rect)] });
            active.push(tracks.len() - 1);
        }
    }
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: i32, y: i32) -> Rect {
        Rect::new(x, y, x + 20, y + 20)
    }

    #[test]
    fn moving_object_stays_one_track() {
        let frames: Vec<Vec<(ObjectClass, Rect)>> = (0..10)
            .map(|i| vec![(ObjectClass::Vehicle, r(i * 3, 5))])
            .collect();
        let tracks = associate(&frames, TrackerConfig::default());
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].observations.len(), 10);
        assert_eq!(tracks[0].first_frame(), 0);
        assert_eq!(tracks[0].last_frame(), 9);
    }

    #[test]
    fn class_gate_separates_overlapping_objects() {
        let frames = vec![
            vec![(ObjectClass::Vehicle, r(0, 0)), (ObjectClass::Pedestrian, r(2, 2))],
            vec![(ObjectClass::Vehicle, r(1, 0)), (ObjectClass::Pedestrian, r(3, 2))],
        ];
        let tracks = associate(&frames, TrackerConfig::default());
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|t| t.observations.len() == 2));
    }

    #[test]
    fn occlusion_gap_is_bridged_up_to_max_gap() {
        let cfg = TrackerConfig { iou_threshold: 0.25, max_gap: 3 };
        // Present frames 0..2, gone 3..5 (gap 3), back 6..8.
        let frames: Vec<Vec<(ObjectClass, Rect)>> = (0..9)
            .map(|i| {
                if (3..6).contains(&i) {
                    vec![]
                } else {
                    vec![(ObjectClass::Vehicle, r(0, 0))]
                }
            })
            .collect();
        let tracks = associate(&frames, cfg);
        assert_eq!(tracks.len(), 1, "gap of 3 frames should be bridged");
        assert_eq!(tracks[0].observations.len(), 6);

        // A longer gap splits the track.
        let frames: Vec<Vec<(ObjectClass, Rect)>> = (0..12)
            .map(|i| {
                if (3..8).contains(&i) {
                    vec![]
                } else {
                    vec![(ObjectClass::Vehicle, r(0, 0))]
                }
            })
            .collect();
        let tracks = associate(&frames, cfg);
        assert_eq!(tracks.len(), 2, "gap of 5 frames must split");
    }

    #[test]
    fn crossing_objects_keep_identities_by_best_iou() {
        // Two vehicles far apart moving toward each other; each frame's
        // detection order flips to prove order independence of identity.
        let mut frames: Vec<Vec<(ObjectClass, Rect)>> = Vec::new();
        for i in 0..8i32 {
            let a = (ObjectClass::Vehicle, r(i * 4, 0));
            let b = (ObjectClass::Vehicle, r(200 - i * 4, 0));
            frames.push(if i % 2 == 0 { vec![a, b] } else { vec![b, a] });
        }
        let tracks = associate(&frames, TrackerConfig::default());
        assert_eq!(tracks.len(), 2);
        for t in &tracks {
            assert_eq!(t.observations.len(), 8);
            // Each track's boxes move monotonically in one direction.
            let xs: Vec<i32> = t.observations.iter().map(|&(_, b)| b.x0).collect();
            let increasing = xs.windows(2).all(|w| w[1] >= w[0]);
            let decreasing = xs.windows(2).all(|w| w[1] <= w[0]);
            assert!(increasing || decreasing, "identity switch: {xs:?}");
        }
    }

    #[test]
    fn association_is_deterministic() {
        let frames: Vec<Vec<(ObjectClass, Rect)>> = (0..20)
            .map(|i| {
                vec![
                    (ObjectClass::Vehicle, r(i * 2, 0)),
                    (ObjectClass::Vehicle, r(100 - i, 40)),
                    (ObjectClass::Pedestrian, r(50, i * 3)),
                ]
            })
            .collect();
        let a = associate(&frames, TrackerConfig::default());
        let b = associate(&frames, TrackerConfig::default());
        assert_eq!(a, b);
    }
}
