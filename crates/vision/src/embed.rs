//! Deterministic tracklet embeddings.
//!
//! A 16-dimensional geometric/motion descriptor per tracklet, computed
//! from its boxes alone — position, extent, trajectory, and dynamics,
//! all normalized by the frame geometry so embeddings compare across
//! resolutions. This is the repository's stand-in for a re-id CNN's
//! appearance vector: pure arithmetic over the association output, so
//! the same tracklet always embeds to the same bits, which is what
//! makes ingest byte-reproducible end to end.

use crate::track::Tracklet;

/// Embedding dimension produced by [`embed_tracklet`].
pub const TRACK_EMBED_DIM: usize = 16;

/// Embed one tracklet observed in a `width`×`height` video of
/// `total_frames` frames.
pub fn embed_tracklet(t: &Tracklet, width: u32, height: u32, total_frames: u32) -> [f32; TRACK_EMBED_DIM] {
    let w = width.max(1) as f32;
    let h = height.max(1) as f32;
    let n = t.observations.len() as f32;
    let total = total_frames.max(1) as f32;

    let mut mean_cx = 0.0;
    let mut mean_cy = 0.0;
    let mut mean_bw = 0.0;
    let mut mean_bh = 0.0;
    let mut min_cx = f32::INFINITY;
    let mut max_cx = f32::NEG_INFINITY;
    let mut min_cy = f32::INFINITY;
    let mut max_cy = f32::NEG_INFINITY;
    let mut path_len = 0.0;
    let mut prev: Option<(f32, f32)> = None;
    for &(_, b) in &t.observations {
        let (cx, cy) = b.center();
        mean_cx += cx;
        mean_cy += cy;
        mean_bw += b.width() as f32;
        mean_bh += b.height() as f32;
        min_cx = min_cx.min(cx);
        max_cx = max_cx.max(cx);
        min_cy = min_cy.min(cy);
        max_cy = max_cy.max(cy);
        if let Some((px, py)) = prev {
            path_len += ((cx - px).powi(2) + (cy - py).powi(2)).sqrt();
        }
        prev = Some((cx, cy));
    }
    mean_cx /= n;
    mean_cy /= n;
    mean_bw /= n;
    mean_bh /= n;

    let (first_f, first_b) = t.observations[0];
    let (last_f, last_b) = *t.observations.last().unwrap();
    let (fx, fy) = first_b.center();
    let (lx, ly) = last_b.center();
    let duration = (last_f - first_f + 1) as f32;
    let aspect = mean_bw / mean_bh.max(1.0);
    let area = (mean_bw * mean_bh) / (w * h);
    // Mean per-frame box-size drift, a crude depth-change signal.
    let first_area = (first_b.width() * first_b.height()) as f32;
    let last_area = (last_b.width() * last_b.height()) as f32;
    let growth = (last_area - first_area) / (w * h * duration);

    [
        mean_cx / w,
        mean_cy / h,
        mean_bw / w,
        mean_bh / h,
        aspect.min(8.0) / 8.0,
        area.sqrt(),
        (lx - fx) / w,
        (ly - fy) / h,
        path_len / (w + h),
        duration / total,
        n / total,
        min_cx / w,
        max_cx / w,
        min_cy / h,
        max_cy / h,
        growth * 100.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_geom::Rect;
    use vr_scene::entity::ObjectClass;

    fn tracklet(obs: &[(u32, Rect)]) -> Tracklet {
        Tracklet { id: 0, class: ObjectClass::Vehicle, observations: obs.to_vec() }
    }

    #[test]
    fn embedding_is_deterministic_and_finite() {
        let t = tracklet(&[
            (0, Rect::new(10, 10, 40, 30)),
            (1, Rect::new(14, 11, 44, 31)),
            (3, Rect::new(22, 13, 52, 33)),
        ]);
        let a = embed_tracklet(&t, 192, 108, 24);
        let b = embed_tracklet(&t, 192, 108, 24);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn moving_and_static_tracklets_embed_apart() {
        let moving = tracklet(&(0..8).map(|i| (i, Rect::new(i as i32 * 10, 20, i as i32 * 10 + 30, 40))).collect::<Vec<_>>());
        let still = tracklet(&(0..8).map(|i| (i, Rect::new(80, 20, 110, 40))).collect::<Vec<_>>());
        let em = embed_tracklet(&moving, 192, 108, 24);
        let es = embed_tracklet(&still, 192, 108, 24);
        let d2: f32 = em.iter().zip(&es).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(d2 > 0.01, "distinct motion should separate embeddings (d2={d2})");
    }

    #[test]
    fn components_are_resolution_normalized() {
        let obs: Vec<(u32, Rect)> = (0..4).map(|i| (i, Rect::new(10 + i as i32, 10, 40 + i as i32, 30))).collect();
        let t = tracklet(&obs);
        let scaled: Vec<(u32, Rect)> = obs
            .iter()
            .map(|&(f, b)| (f, Rect::new(b.x0 * 2, b.y0 * 2, b.x1 * 2, b.y1 * 2)))
            .collect();
        let t2 = tracklet(&scaled);
        let a = embed_tracklet(&t, 100, 100, 24);
        let b = embed_tracklet(&t2, 200, 200, 24);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 0.05, "component {i}: {x} vs {y}");
        }
    }
}
