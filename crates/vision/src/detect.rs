//! Detection types and non-maximum suppression.

use vr_geom::Rect;
use vr_scene::ObjectClass;

/// One detected object instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    pub class: ObjectClass,
    pub rect: Rect,
    /// Confidence in `[0, 1]`.
    pub score: f32,
}

/// Greedy non-maximum suppression: keep the highest-scoring detection
/// and drop any same-class detection overlapping it by more than
/// `iou_threshold`; repeat.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f64) -> Vec<Detection> {
    detections.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    let mut keep: Vec<Detection> = Vec::with_capacity(detections.len());
    'candidates: for d in detections {
        for k in &keep {
            if k.class == d.class && k.rect.iou(&d.rect) > iou_threshold {
                continue 'candidates;
            }
        }
        keep.push(d);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: ObjectClass, x: i32, score: f32) -> Detection {
        Detection { class, rect: Rect::from_origin_size(x, 0, 10, 10), score }
    }

    #[test]
    fn overlapping_same_class_is_suppressed() {
        let out = nms(
            vec![
                det(ObjectClass::Vehicle, 0, 0.9),
                det(ObjectClass::Vehicle, 2, 0.7), // IoU with first ≈ 0.67
                det(ObjectClass::Vehicle, 30, 0.5),
            ],
            0.5,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].score, 0.9);
        assert_eq!(out[1].score, 0.5);
    }

    #[test]
    fn different_classes_do_not_suppress() {
        let out = nms(
            vec![det(ObjectClass::Vehicle, 0, 0.9), det(ObjectClass::Pedestrian, 1, 0.8)],
            0.5,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn keeps_highest_score() {
        let out = nms(
            vec![det(ObjectClass::Vehicle, 0, 0.3), det(ObjectClass::Vehicle, 1, 0.95)],
            0.5,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, 0.95);
    }

    #[test]
    fn empty_input() {
        assert!(nms(Vec::new(), 0.5).is_empty());
    }
}
