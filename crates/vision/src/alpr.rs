//! License-plate recognition (the OpenALPR stand-in for Q8).
//!
//! Plates in Visual City carry a parity-checked block code (see
//! `vr_vtt::plate` for the encoding and the rationale). The
//! recognizer is a genuine pixel-level pipeline:
//!
//! 1. locate bright, chroma-neutral, plate-shaped connected
//!    components (the renderer frames plates in dark pixels, so the
//!    bright component is exactly the coded area);
//! 2. adaptively threshold the region;
//! 3. sample each code block through the shared layout and vote;
//! 4. accept only when the parity cell validates and the votes are
//!    confident.

use crate::cost::CostModel;
use vr_base::LicensePlate;
use vr_frame::Frame;
use vr_geom::Rect;
use vr_vtt::plate::{block_center, decode_cells, CELLS, CELL_COLS, CELL_ROWS};

/// A recognized plate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateRead {
    pub rect: Rect,
    pub plate: LicensePlate,
    /// Aggregate vote confidence in `[0, 1]`.
    pub confidence: f32,
}

/// A located plate region: bounding box plus estimated corners of the
/// bright coded area (TL, TR, BL, BR in image coordinates). Corners
/// let the decoder rectify the perspective-projected quad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateCandidate {
    pub rect: Rect,
    pub corners: [(f32, f32); 4],
}

impl PlateCandidate {
    /// An axis-aligned candidate covering `rect` exactly.
    pub fn axis_aligned(rect: Rect) -> Self {
        let (x0, y0) = (rect.x0 as f32, rect.y0 as f32);
        let (x1, y1) = (rect.x1 as f32 - 1.0, rect.y1 as f32 - 1.0);
        Self { rect, corners: [(x0, y0), (x1, y0), (x0, y1), (x1, y1)] }
    }
}

/// The plate recognizer.
pub struct AlprRecognizer {
    /// Minimum aggregate confidence to accept a read.
    pub min_confidence: f32,
    cost: CostModel,
}

impl Default for AlprRecognizer {
    fn default() -> Self {
        Self::new(6.0)
    }
}

impl AlprRecognizer {
    /// Create a recognizer with the given synthetic compute cost
    /// (MACs per pixel; ALPR engines are cheaper than full-frame CNN
    /// detection but far from free).
    pub fn new(macs_per_pixel: f64) -> Self {
        Self { min_confidence: 0.55, cost: CostModel::new(macs_per_pixel) }
    }

    /// Find and decode every readable plate in a frame.
    pub fn recognize(&mut self, frame: &Frame) -> Vec<PlateRead> {
        self.cost.run((frame.width() * frame.height()) as usize);
        let mut out = Vec::new();
        for cand in find_plate_candidates(frame) {
            if let Some(read) = self.read_candidate(frame, &cand) {
                if read.confidence >= self.min_confidence {
                    out.push(read);
                }
            }
        }
        out
    }

    /// Decode an axis-aligned plate region (convenience wrapper over
    /// [`read_candidate`](Self::read_candidate)).
    pub fn read_plate(&self, frame: &Frame, rect: Rect) -> Option<PlateRead> {
        self.read_candidate(frame, &PlateCandidate::axis_aligned(rect))
    }

    /// Decode a located plate, refining the corner estimate over a
    /// small offset/scale neighbourhood (corner detection on a
    /// ~25-pixel quad is ±1 px; the checksum arbitrates). Returns the
    /// highest-confidence decode that validates.
    pub fn read_candidate(&self, frame: &Frame, cand: &PlateCandidate) -> Option<PlateRead> {
        let mut best: Option<PlateRead> = None;
        // Center of the quad, for outward expansion.
        let cx = cand.corners.iter().map(|c| c.0).sum::<f32>() / 4.0;
        let cy = cand.corners.iter().map(|c| c.1).sum::<f32>() / 4.0;
        for expand in [0.0f32, 0.5, 1.0] {
            for dx in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
                for dy in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
                    let shifted = PlateCandidate {
                        rect: cand.rect,
                        corners: cand.corners.map(|(x, y)| {
                            // Push each corner outward (rasterized
                            // edges erode the bright component by
                            // about half a pixel) and shift.
                            let ox = (x - cx).signum() * expand;
                            let oy = (y - cy).signum() * expand;
                            (x + ox + dx, y + oy + dy)
                        }),
                    };
                    if let Some(read) = self.decode_quad(frame, &shifted) {
                        if best.map(|b| read.confidence > b.confidence).unwrap_or(true) {
                            best = Some(read);
                        }
                    }
                }
            }
        }
        best
    }

    /// Single decode attempt through a fixed corner quad.
    fn decode_quad(&self, frame: &Frame, cand: &PlateCandidate) -> Option<PlateRead> {
        let rect = cand.rect.clipped(frame.width(), frame.height());
        if rect.width() < 14 || rect.height() < 5 {
            return None;
        }
        // Adaptive threshold from the region's luma range.
        let (mut lo, mut hi) = (255u8, 0u8);
        for y in rect.y0..rect.y1 {
            for x in rect.x0..rect.x1 {
                let v = frame.get_y(x as u32, y as u32);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi - lo < 40 {
            return None; // no code blocks present
        }
        let threshold = (lo as u32 + hi as u32) / 2;
        // Bilinear map from plate texture coordinates through the
        // corner quad: (u, v_down) -> image point.
        let [tl, tr, bl, br] = cand.corners;
        let map = |u: f32, v_down: f32| -> (f32, f32) {
            let top = (tl.0 + (tr.0 - tl.0) * u, tl.1 + (tr.1 - tl.1) * u);
            let bot = (bl.0 + (br.0 - bl.0) * u, bl.1 + (br.1 - bl.1) * u);
            (top.0 + (bot.0 - top.0) * v_down, top.1 + (bot.1 - top.1) * v_down)
        };
        // Vote each block with a 5-point stencil around its center.
        let cell_w = rect.width() as f32 / CELLS as f32;
        let mut values = [0u8; CELLS];
        let mut confidence_sum = 0.0f32;
        let mut blocks = 0.0f32;
        for (cell, value) in values.iter_mut().enumerate() {
            for row in 0..CELL_ROWS {
                for col in 0..CELL_COLS {
                    let (u, v_up) = block_center(cell, col, row);
                    let mut dark_votes = 0u32;
                    const STENCIL: [(f32, f32); 5] =
                        [(0.0, 0.0), (-0.25, -0.25), (0.25, -0.25), (-0.25, 0.25), (0.25, 0.25)];
                    for (du, dv) in STENCIL {
                        let uu = (u + du * cell_w / rect.width() as f32 / CELL_COLS as f32)
                            .clamp(0.0, 1.0);
                        let vv = (v_up + dv / rect.height() as f32).clamp(0.0, 1.0);
                        let (x, y) = map(uu, 1.0 - vv);
                        let xi = (x.round().max(0.0) as u32).min(frame.width() - 1);
                        let yi = (y.round().max(0.0) as u32).min(frame.height() - 1);
                        if (frame.get_y(xi, yi) as u32) < threshold {
                            dark_votes += 1;
                        }
                    }
                    if dark_votes >= 3 {
                        *value |= 1 << (row * CELL_COLS + col);
                    }
                    // Unanimous votes are confident; split votes are
                    // not.
                    confidence_sum += (dark_votes as f32 - 2.5).abs() / 2.5;
                    blocks += 1.0;
                }
            }
        }
        let plate = decode_cells(values)?;
        Some(PlateRead { rect, plate, confidence: confidence_sum / blocks })
    }
}

/// Locate plate-shaped regions: bright, chroma-neutral connected
/// components with a landscape aspect ratio. Corner points of each
/// component are estimated with the diagonal-extreme method
/// (TL = argmin x+y, TR = argmax x−y, BL = argmin x−y,
/// BR = argmax x+y), which is exact for convex quads.
pub fn find_plate_candidates(frame: &Frame) -> Vec<PlateCandidate> {
    let (w, h) = (frame.width(), frame.height());
    let mut mask = vec![false; (w * h) as usize];
    for y in 0..h {
        for x in 0..w {
            let p = frame.get(x, y);
            mask[(y * w + x) as usize] =
                p.y > 150 && p.u.abs_diff(128) < 22 && p.v.abs_diff(128) < 22;
        }
    }
    let mut seen = vec![false; mask.len()];
    let mut candidates = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for start in 0..mask.len() {
        if !mask[start] || seen[start] {
            continue;
        }
        seen[start] = true;
        queue.clear();
        queue.push(start as u32);
        let mut min_x = u32::MAX;
        let mut min_y = u32::MAX;
        let mut max_x = 0u32;
        let mut max_y = 0u32;
        // Diagonal extremes for corner estimation.
        let mut tl = (0u32, 0u32, i64::MAX); // argmin x+y
        let mut br = (0u32, 0u32, i64::MIN); // argmax x+y
        let mut tr = (0u32, 0u32, i64::MIN); // argmax x-y
        let mut bl = (0u32, 0u32, i64::MAX); // argmin x-y
        let mut head = 0;
        while head < queue.len() {
            let idx = queue[head];
            head += 1;
            let x = idx % w;
            let y = idx / w;
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
            let sum = x as i64 + y as i64;
            let diff = x as i64 - y as i64;
            if sum < tl.2 {
                tl = (x, y, sum);
            }
            if sum > br.2 {
                br = (x, y, sum);
            }
            if diff > tr.2 {
                tr = (x, y, diff);
            }
            if diff < bl.2 {
                bl = (x, y, diff);
            }
            for (nx, ny) in
                [(x.wrapping_sub(1), y), (x + 1, y), (x, y.wrapping_sub(1)), (x, y + 1)]
            {
                if nx < w && ny < h {
                    let ni = (ny * w + nx) as usize;
                    if mask[ni] && !seen[ni] {
                        seen[ni] = true;
                        queue.push(ni as u32);
                    }
                }
            }
        }
        let rect = Rect::new(min_x as i32, min_y as i32, max_x as i32 + 1, max_y as i32 + 1);
        let (bw, bh) = (rect.width(), rect.height());
        if !(14..=400).contains(&bw) || !(5..=200).contains(&bh) {
            continue;
        }
        let aspect = bw as f32 / bh as f32;
        if !(1.2..=5.5).contains(&aspect) {
            continue;
        }
        candidates.push(PlateCandidate {
            rect,
            corners: [
                (tl.0 as f32, tl.1 as f32),
                (tr.0 as f32, tr.1 as f32),
                (bl.0 as f32, bl.1 as f32),
                (br.0 as f32, br.1 as f32),
            ],
        });
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_frame::Yuv;
    use vr_vtt::plate::cell_values;

    /// Paint the inner coded area of a plate into `rect` via the
    /// shared texture, framed by a dark border — the same structure
    /// the renderer produces.
    fn paint_plate(frame: &mut Frame, rect: Rect, plate: LicensePlate) {
        let values = cell_values(&plate);
        let border = rect.inflated(2).clipped(frame.width(), frame.height());
        for y in border.y0..border.y1 {
            for x in border.x0..border.x1 {
                frame.set(x as u32, y as u32, Yuv::new(25, 128, 128));
            }
        }
        for y in rect.y0..rect.y1 {
            for x in rect.x0..rect.x1 {
                let u = (x - rect.x0) as f32 / (rect.width() as f32 - 1.0);
                let v_up = 1.0 - (y - rect.y0) as f32 / (rect.height() as f32 - 1.0);
                let dark = vr_vtt::plate::is_dark(&values, u, v_up);
                let c = if dark { Yuv::new(25, 128, 128) } else { Yuv::new(220, 128, 128) };
                frame.set(x as u32, y as u32, c);
            }
        }
    }

    #[test]
    fn reads_a_clean_frontal_plate() {
        let plate = LicensePlate::parse("AB12CZ").unwrap();
        let mut frame = Frame::filled(160, 90, Yuv::gray(70));
        let rect = Rect::from_origin_size(40, 30, 72, 28);
        paint_plate(&mut frame, rect, plate);
        let alpr = AlprRecognizer::new(0.0);
        let read = alpr.read_plate(&frame, rect).expect("plate should decode");
        assert_eq!(read.plate, plate);
        assert!(read.confidence > 0.8, "confidence {}", read.confidence);
    }

    #[test]
    fn reads_a_small_plate() {
        // The size regime that matters: ~30 px wide.
        let plate = LicensePlate::parse("QW34ER").unwrap();
        let mut frame = Frame::filled(160, 90, Yuv::gray(60));
        let rect = Rect::from_origin_size(60, 40, 30, 13);
        paint_plate(&mut frame, rect, plate);
        let alpr = AlprRecognizer::new(0.0);
        let read = alpr.read_plate(&frame, rect).expect("small plate should decode");
        assert_eq!(read.plate, plate);
    }

    #[test]
    fn full_pipeline_localizes_and_reads() {
        let plate = LicensePlate::parse("XY99QA").unwrap();
        let mut frame = Frame::filled(240, 140, Yuv::gray(60));
        let rect = Rect::from_origin_size(90, 60, 56, 24);
        paint_plate(&mut frame, rect, plate);
        let mut alpr = AlprRecognizer::new(0.0);
        let reads = alpr.recognize(&frame);
        assert!(
            reads.iter().any(|r| r.plate == plate),
            "plate not found; reads: {reads:?}"
        );
    }

    #[test]
    fn parity_rejects_corrupted_plates() {
        let plate = LicensePlate::parse("AB12CZ").unwrap();
        let mut frame = Frame::filled(160, 90, Yuv::gray(70));
        let rect = Rect::from_origin_size(40, 30, 70, 28);
        paint_plate(&mut frame, rect, plate);
        // Corrupt the code area by painting a dark bar through it
        // (forces extra bits on).
        for y in 32..56 {
            for x in 45..54 {
                frame.set(x, y, Yuv::new(25, 128, 128));
            }
        }
        let alpr = AlprRecognizer::new(0.0);
        match alpr.read_plate(&frame, rect) {
            None => {}
            Some(read) => {
                assert_ne!(read.plate, plate, "corrupted plate must not read as the original")
            }
        }
    }

    #[test]
    fn tiny_or_flat_regions_are_rejected() {
        let frame = Frame::filled(64, 64, Yuv::gray(200));
        let alpr = AlprRecognizer::new(0.0);
        assert!(alpr.read_plate(&frame, Rect::from_origin_size(0, 0, 8, 4)).is_none());
        // Large but contrast-free region.
        assert!(alpr.read_plate(&frame, Rect::from_origin_size(0, 0, 60, 24)).is_none());
    }

    #[test]
    fn no_false_reads_on_plain_scenes() {
        let mut frame = Frame::filled(160, 90, Yuv::gray(90));
        // A bright rectangle with plate-like aspect but no code.
        for y in 30..46 {
            for x in 20..60 {
                frame.set(x, y, Yuv::new(210, 128, 128));
            }
        }
        let mut alpr = AlprRecognizer::new(0.0);
        assert!(alpr.recognize(&frame).is_empty());
    }

    #[test]
    fn whole_alphabet_round_trips() {
        use vr_base::id::PLATE_ALPHABET;
        let alpr = AlprRecognizer::new(0.0);
        for chunk in PLATE_ALPHABET.chunks(6) {
            if chunk.len() < 6 {
                break;
            }
            let mut chars = [0u8; 6];
            chars.copy_from_slice(chunk);
            let plate = LicensePlate(chars);
            let mut frame = Frame::filled(200, 100, Yuv::gray(50));
            let rect = Rect::from_origin_size(30, 30, 96, 36);
            paint_plate(&mut frame, rect, plate);
            let read = alpr.read_plate(&frame, rect).expect("decode");
            assert_eq!(read.plate, plate, "alphabet chunk {chunk:?}");
        }
    }
}
