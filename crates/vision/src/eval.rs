//! Detection evaluation: precision, recall, and average precision at
//! an IoU threshold (PASCAL VOC-style), used to reproduce the §6.3.1
//! video-quality experiment (AP@50 on Visual Road vs real video).

use crate::detect::Detection;
use vr_geom::Rect;
use vr_scene::ObjectClass;

/// Ground truth for evaluation: class + box per object.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruthBox {
    pub class: ObjectClass,
    pub rect: Rect,
}

/// One frame's detections paired with its ground truth.
///
/// `ignore` boxes implement the UA-DETRAC-style evaluation protocol:
/// objects real enough to attract detections but too small/marginal
/// to annotate. A detection matching an ignore box is dropped from
/// scoring (neither true nor false positive); ignore boxes never
/// count as misses.
#[derive(Debug, Clone, Default)]
pub struct EvalFrame {
    pub detections: Vec<Detection>,
    pub truth: Vec<GroundTruthBox>,
    pub ignore: Vec<GroundTruthBox>,
}

/// Precision/recall summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrSummary {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
}

impl PrSummary {
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Match detections to ground truth greedily by descending score at
/// `iou_threshold`; each truth box matches at most one detection.
pub fn match_frame(frame: &EvalFrame, class: ObjectClass, iou_threshold: f64) -> PrSummary {
    let mut dets: Vec<&Detection> =
        frame.detections.iter().filter(|d| d.class == class).collect();
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    let truths: Vec<&GroundTruthBox> =
        frame.truth.iter().filter(|t| t.class == class).collect();
    let mut used = vec![false; truths.len()];
    let mut tp = 0;
    let mut fp = 0;
    for d in dets {
        if matches_ignore(frame, d, iou_threshold) {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in truths.iter().enumerate() {
            if used[i] {
                continue;
            }
            let iou = d.rect.iou(&t.rect);
            if iou >= iou_threshold && best.map(|(_, b)| iou > b).unwrap_or(true) {
                best = Some((i, iou));
            }
        }
        match best {
            Some((i, _)) => {
                used[i] = true;
                tp += 1;
            }
            None => fp += 1,
        }
    }
    let fnn = used.iter().filter(|&&u| !u).count();
    PrSummary { true_positives: tp, false_positives: fp, false_negatives: fnn }
}

/// Whether a detection overlaps an ignore region enough to be
/// excluded from scoring (intersection covers most of the detection,
/// or IoU clears the matching threshold).
fn matches_ignore(frame: &EvalFrame, d: &Detection, iou_threshold: f64) -> bool {
    frame.ignore.iter().any(|g| {
        g.class == d.class
            && (d.rect.iou(&g.rect) >= iou_threshold
                || d.rect.intersect(&g.rect).area() as f64 >= 0.5 * d.rect.area() as f64)
    })
}

/// Average precision over a set of frames for one class at an IoU
/// threshold (all-points interpolation over the score-ranked list).
pub fn average_precision(frames: &[EvalFrame], class: ObjectClass, iou_threshold: f64) -> f64 {
    // Global ranking: (score, is_tp) across all frames, with per-frame
    // greedy matching.
    let mut labelled: Vec<(f32, bool)> = Vec::new();
    let mut total_truth = 0usize;
    for frame in frames {
        let truths: Vec<&GroundTruthBox> =
            frame.truth.iter().filter(|t| t.class == class).collect();
        total_truth += truths.len();
        let mut dets: Vec<&Detection> =
            frame.detections.iter().filter(|d| d.class == class).collect();
        dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let mut used = vec![false; truths.len()];
        for d in dets {
            if matches_ignore(frame, d, iou_threshold) {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, t) in truths.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let iou = d.rect.iou(&t.rect);
                if iou >= iou_threshold && best.map(|(_, b)| iou > b).unwrap_or(true) {
                    best = Some((i, iou));
                }
            }
            match best {
                Some((i, _)) => {
                    used[i] = true;
                    labelled.push((d.score, true));
                }
                None => labelled.push((d.score, false)),
            }
        }
    }
    if total_truth == 0 {
        return 0.0;
    }
    labelled.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    // Precision-recall points, then all-points AP with monotone
    // precision envelope.
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(labelled.len());
    for (_, is_tp) in &labelled {
        if *is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        points.push((
            tp as f64 / total_truth as f64,
            tp as f64 / (tp + fp) as f64,
        ));
    }
    // Monotone envelope from the right.
    for i in (0..points.len().saturating_sub(1)).rev() {
        points[i].1 = points[i].1.max(points[i + 1].1);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (recall, precision) in points {
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(x: i32) -> GroundTruthBox {
        GroundTruthBox { class: ObjectClass::Vehicle, rect: Rect::from_origin_size(x, 0, 20, 20) }
    }

    fn det(x: i32, score: f32) -> Detection {
        Detection {
            class: ObjectClass::Vehicle,
            rect: Rect::from_origin_size(x, 0, 20, 20),
            score,
        }
    }

    #[test]
    fn perfect_detections_give_ap_one() {
        let frames = vec![EvalFrame {
            detections: vec![det(0, 0.9), det(100, 0.8)],
            truth: vec![gt(0), gt(100)],
            ignore: Vec::new(),
        }];
        let ap = average_precision(&frames, ObjectClass::Vehicle, 0.5);
        assert!((ap - 1.0).abs() < 1e-9, "ap {ap}");
        let pr = match_frame(&frames[0], ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.true_positives, 2);
        assert_eq!(pr.false_positives, 0);
        assert_eq!(pr.false_negatives, 0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn misses_reduce_recall_and_ap() {
        let frames = vec![EvalFrame {
            detections: vec![det(0, 0.9)],
            truth: vec![gt(0), gt(100)],
            ignore: Vec::new(),
        }];
        let pr = match_frame(&frames[0], ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.recall(), 0.5);
        assert_eq!(pr.precision(), 1.0);
        let ap = average_precision(&frames, ObjectClass::Vehicle, 0.5);
        assert!((ap - 0.5).abs() < 1e-9);
    }

    #[test]
    fn false_positives_reduce_precision() {
        let frame = EvalFrame {
            detections: vec![det(0, 0.9), det(500, 0.8)],
            truth: vec![gt(0)],
            ignore: Vec::new(),
        };
        let pr = match_frame(&frame, ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.precision(), 0.5);
        assert_eq!(pr.recall(), 1.0);
    }

    #[test]
    fn low_scored_fps_hurt_ap_less_than_high_scored() {
        let high_fp = vec![EvalFrame {
            detections: vec![det(500, 0.95), det(0, 0.9)],
            truth: vec![gt(0)],
            ignore: Vec::new(),
        }];
        let low_fp = vec![EvalFrame {
            detections: vec![det(0, 0.9), det(500, 0.2)],
            truth: vec![gt(0)],
            ignore: Vec::new(),
        }];
        let ap_high = average_precision(&high_fp, ObjectClass::Vehicle, 0.5);
        let ap_low = average_precision(&low_fp, ObjectClass::Vehicle, 0.5);
        assert!(ap_low > ap_high, "{ap_low} vs {ap_high}");
    }

    #[test]
    fn iou_threshold_matters() {
        // A detection shifted by 8 px of a 20 px box: IoU ≈ 0.43.
        let frame = EvalFrame { detections: vec![det(8, 0.9)], truth: vec![gt(0)], ignore: Vec::new() };
        assert_eq!(match_frame(&frame, ObjectClass::Vehicle, 0.5).true_positives, 0);
        assert_eq!(match_frame(&frame, ObjectClass::Vehicle, 0.3).true_positives, 1);
    }

    #[test]
    fn one_truth_matches_at_most_one_detection() {
        let frame = EvalFrame {
            detections: vec![det(0, 0.9), det(1, 0.8)],
            truth: vec![gt(0)],
            ignore: Vec::new(),
        };
        let pr = match_frame(&frame, ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(average_precision(&[], ObjectClass::Vehicle, 0.5), 0.0);
        let pr = match_frame(&EvalFrame::default(), ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.precision(), 0.0);
        assert_eq!(pr.recall(), 0.0);
    }
}

#[cfg(test)]
mod ignore_tests {
    use super::*;

    #[test]
    fn ignored_detections_are_neither_tp_nor_fp() {
        let gt = GroundTruthBox {
            class: ObjectClass::Vehicle,
            rect: Rect::from_origin_size(0, 0, 20, 20),
        };
        let ignored = GroundTruthBox {
            class: ObjectClass::Vehicle,
            rect: Rect::from_origin_size(100, 0, 10, 10),
        };
        let frame = EvalFrame {
            detections: vec![
                Detection { class: ObjectClass::Vehicle, rect: gt.rect, score: 0.9 },
                Detection { class: ObjectClass::Vehicle, rect: ignored.rect, score: 0.8 },
            ],
            truth: vec![gt],
            ignore: vec![ignored],
        };
        let pr = match_frame(&frame, ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 0, "ignored detection must not count as FP");
        assert_eq!(pr.false_negatives, 0, "ignore boxes are not misses");
        let ap = average_precision(&[frame], ObjectClass::Vehicle, 0.5);
        assert!((ap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_with_ignore_region_excludes() {
        // A detection mostly inside an ignore region is excluded even
        // below the IoU threshold.
        let ignored = GroundTruthBox {
            class: ObjectClass::Vehicle,
            rect: Rect::from_origin_size(0, 0, 40, 40),
        };
        let frame = EvalFrame {
            detections: vec![Detection {
                class: ObjectClass::Vehicle,
                rect: Rect::from_origin_size(5, 5, 10, 10),
                score: 0.9,
            }],
            truth: Vec::new(),
            ignore: vec![ignored],
        };
        let pr = match_frame(&frame, ObjectClass::Vehicle, 0.5);
        assert_eq!(pr.false_positives, 0);
    }
}
