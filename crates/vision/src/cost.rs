//! Deterministic compute-cost model.
//!
//! A convolutional detector's per-frame cost in the paper's testbed is
//! orders of magnitude above the classical image ops. Our blob
//! detector alone is too cheap to reproduce that ratio, so detectors
//! carry a [`CostModel`] that performs a calibrated amount of real
//! arithmetic per invocation (a dense multiply-accumulate loop — the
//! same instruction mix as a CNN's inner loops). The work is genuine
//! (its result is folded into a checksum the optimizer cannot remove);
//! only its *amount* is configured.

/// Executes a configurable amount of multiply-accumulate work.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// MAC operations per pixel of input.
    macs_per_pixel: f64,
    /// Running checksum (prevents dead-code elimination; also a cheap
    /// reproducibility probe).
    checksum: f32,
}

impl CostModel {
    /// A model costing `macs_per_pixel` multiply-accumulates per input
    /// pixel. YOLOv2 at full resolution performs on the order of
    /// 10–100 MACs per input pixel depending on input scaling; the
    /// defaults used by the engines live in their configs.
    pub fn new(macs_per_pixel: f64) -> Self {
        Self { macs_per_pixel, checksum: 0.0 }
    }

    /// A free cost model (no synthetic work).
    pub fn free() -> Self {
        Self::new(0.0)
    }

    /// Burn the configured cost for a `pixels`-pixel input.
    pub fn run(&mut self, pixels: usize) {
        let macs = (self.macs_per_pixel * pixels as f64) as u64;
        if macs == 0 {
            return;
        }
        // Dense MAC loop over a small rolling state: real arithmetic,
        // fully deterministic, and cheap on memory bandwidth so the
        // cost scales with `macs` alone. `black_box` pins the input
        // and output so the optimizer cannot collapse the recurrence.
        let mut acc = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let w = [0.993f32, 1.007, 0.998, 1.002, 0.995, 1.004, 0.999, 1.001];
        let iters = macs / 8;
        for i in 0..iters {
            let x = std::hint::black_box(i as f32) * 1e-20;
            for k in 0..8 {
                acc[k] = acc[k] * w[k] + x;
            }
        }
        self.checksum += std::hint::black_box(acc.iter().sum::<f32>());
    }

    /// The accumulated checksum (diagnostics/tests).
    pub fn checksum(&self) -> f32 {
        self.checksum
    }

    /// Configured MACs per pixel.
    pub fn macs_per_pixel(&self) -> f64 {
        self.macs_per_pixel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn free_model_does_nothing() {
        let mut m = CostModel::free();
        m.run(1_000_000);
        assert_eq!(m.checksum(), 0.0);
    }

    #[test]
    fn work_scales_with_configuration() {
        // The expensive model must take measurably longer than the
        // cheap one on the same input.
        let mut cheap = CostModel::new(0.5);
        let mut expensive = CostModel::new(50.0);
        let pixels = 200_000;
        // Warm up.
        cheap.run(pixels);
        expensive.run(pixels);
        let t0 = Instant::now();
        for _ in 0..5 {
            cheap.run(pixels);
        }
        let t_cheap = t0.elapsed();
        let t1 = Instant::now();
        for _ in 0..5 {
            expensive.run(pixels);
        }
        let t_expensive = t1.elapsed();
        assert!(
            t_expensive > t_cheap * 5,
            "expensive {t_expensive:?} vs cheap {t_cheap:?}"
        );
    }

    #[test]
    fn checksum_is_deterministic() {
        let mut a = CostModel::new(10.0);
        let mut b = CostModel::new(10.0);
        a.run(10_000);
        b.run(10_000);
        assert_eq!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), 0.0);
    }
}
