//! A miniature replicated block store — the HDFS stand-in.
//!
//! The VCD's offline mode stages inputs on "a distributed file system
//! (we currently support HDFS)" (§3.2). MiniDfs reproduces HDFS's
//! essential shape in-process: a namenode (file → ordered block list,
//! block → datanode replica set) over N datanodes holding fixed-size
//! blocks, with round-robin placement, configurable replication,
//! datanode failure, and replica failover on read.

use std::collections::HashMap;
use vr_base::fault::{self, IoOp};
use vr_base::sync::RwLock;
use vr_base::{Error, Result, SharedBuf};

/// Default block size (64 KiB — scaled down from HDFS's 128 MiB so
/// benchmark-sized videos span multiple blocks).
pub const DEFAULT_BLOCK_SIZE: usize = 64 * 1024;

/// Globally-unique block id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BlockId(u64);

#[derive(Debug, Default)]
struct DataNode {
    alive: bool,
    blocks: HashMap<u64, Vec<u8>>,
}

#[derive(Debug)]
struct NameNode {
    /// file name → ordered blocks.
    files: HashMap<String, Vec<BlockId>>,
    /// block → datanodes holding a replica.
    replicas: HashMap<u64, Vec<usize>>,
    next_block: u64,
    next_node: usize,
}

/// The mini distributed file system.
pub struct MiniDfs {
    block_size: usize,
    replication: usize,
    name: RwLock<NameNode>,
    nodes: Vec<RwLock<DataNode>>,
}

impl MiniDfs {
    /// Create a cluster of `datanodes` nodes with `replication`
    /// replicas per block.
    pub fn new(datanodes: usize, replication: usize, block_size: usize) -> Result<Self> {
        if datanodes == 0 || replication == 0 || replication > datanodes || block_size == 0 {
            return Err(Error::InvalidConfig(format!(
                "bad cluster: {datanodes} nodes, replication {replication}, block {block_size}"
            )));
        }
        Ok(Self {
            block_size,
            replication,
            name: RwLock::new(NameNode {
                files: HashMap::new(),
                replicas: HashMap::new(),
                next_block: 0,
                next_node: 0,
            }),
            nodes: (0..datanodes)
                .map(|_| RwLock::new(DataNode { alive: true, blocks: HashMap::new() }))
                .collect(),
        })
    }

    /// Store a file, splitting it into replicated blocks.
    pub fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        let _span = vr_base::obs::trace::span("storage", "dfs.put");
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]]
        } else {
            data.chunks(self.block_size).collect()
        };
        let mut nn = self.name.write();
        let mut blocks = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let id = nn.next_block;
            nn.next_block += 1;
            // Round-robin placement over live nodes.
            let mut placed = Vec::with_capacity(self.replication);
            let mut scanned = 0;
            while placed.len() < self.replication && scanned < self.nodes.len() * 2 {
                let node_idx = nn.next_node % self.nodes.len();
                nn.next_node += 1;
                scanned += 1;
                if placed.contains(&node_idx) {
                    continue;
                }
                let mut node = self.nodes[node_idx].write();
                if node.alive {
                    node.blocks.insert(id, chunk.to_vec());
                    placed.push(node_idx);
                }
            }
            if placed.len() < self.replication {
                return Err(Error::ResourceExhausted(format!(
                    "only {} live datanodes for replication {}",
                    placed.len(),
                    self.replication
                )));
            }
            nn.replicas.insert(id, placed);
            blocks.push(BlockId(id));
        }
        nn.files.insert(name.to_string(), blocks);
        Ok(())
    }

    /// Read a file back into a [`SharedBuf`], failing over dead
    /// replicas. The result is preallocated from the summed block
    /// sizes (one allocation, no growth) and shared zero-copy with
    /// downstream consumers. Transient I/O failures (injected or real)
    /// are retried with bounded, seeded backoff before the error
    /// surfaces.
    pub fn get(&self, name: &str) -> Result<SharedBuf> {
        let _span = vr_base::obs::trace::span("storage", "dfs.get");
        fault::with_retry("dfs.get", || {
            if let Some(inj) = fault::global() {
                if let Some(e) = inj.io_fail(IoOp::Read) {
                    return Err(e);
                }
            }
            self.get_inner(name)
        })
    }

    fn get_inner(&self, name: &str) -> Result<SharedBuf> {
        let nn = self.name.read();
        let blocks = nn
            .files
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        // Pass 1: resolve a live replica per block and sum sizes, so
        // the assembly buffer is allocated exactly once.
        let mut picked = Vec::with_capacity(blocks.len());
        let mut total = 0usize;
        for b in blocks {
            let holders = nn
                .replicas
                .get(&b.0)
                .ok_or_else(|| Error::Corrupt(format!("dangling block {}", b.0)))?;
            let mut found = None;
            for &h in holders {
                let node = self.nodes[h].read();
                if node.alive {
                    if let Some(data) = node.blocks.get(&b.0) {
                        total += data.len();
                        found = Some(h);
                        break;
                    }
                }
            }
            match found {
                Some(h) => picked.push((b.0, h)),
                None => {
                    return Err(Error::ResourceExhausted(format!(
                        "all replicas of block {} are unavailable",
                        b.0
                    )))
                }
            }
        }
        // Pass 2: copy block contents into the presized buffer. A
        // replica can die between passes; treat that as unavailable.
        let mut out = Vec::with_capacity(total);
        for (id, h) in picked {
            let node = self.nodes[h].read();
            match node.blocks.get(&id) {
                Some(data) if node.alive => out.extend_from_slice(data),
                _ => {
                    return Err(Error::ResourceExhausted(format!(
                        "all replicas of block {id} are unavailable"
                    )))
                }
            }
        }
        Ok(SharedBuf::from_vec(out))
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.name.read().files.contains_key(name)
    }

    /// Mark a datanode dead (its blocks become unreadable).
    pub fn kill_datanode(&self, idx: usize) {
        if let Some(node) = self.nodes.get(idx) {
            node.write().alive = false;
        }
    }

    /// Revive a datanode (its blocks are intact).
    pub fn revive_datanode(&self, idx: usize) {
        if let Some(node) = self.nodes.get(idx) {
            node.write().alive = true;
        }
    }

    /// Count of blocks whose live replica count is below the
    /// replication factor (the namenode's under-replication report).
    pub fn under_replicated_blocks(&self) -> usize {
        let nn = self.name.read();
        nn.replicas
            .values()
            .filter(|holders| {
                let live = holders
                    .iter()
                    .filter(|&&h| self.nodes[h].read().alive)
                    .count();
                live < self.replication
            })
            .count()
    }

    /// Total number of stored files.
    pub fn file_count(&self) -> usize {
        self.name.read().files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_clusters() {
        assert!(MiniDfs::new(0, 1, 1024).is_err());
        assert!(MiniDfs::new(3, 0, 1024).is_err());
        assert!(MiniDfs::new(2, 3, 1024).is_err());
        assert!(MiniDfs::new(2, 2, 0).is_err());
    }

    #[test]
    fn put_get_round_trip_multi_block() {
        let dfs = MiniDfs::new(4, 2, 128).unwrap();
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        dfs.put("video.vrmf", &data).unwrap();
        assert_eq!(dfs.get("video.vrmf").unwrap(), data);
        assert!(dfs.exists("video.vrmf"));
        assert_eq!(dfs.file_count(), 1);
    }

    #[test]
    fn empty_file_round_trips() {
        let dfs = MiniDfs::new(2, 1, 128).unwrap();
        dfs.put("empty", &[]).unwrap();
        assert_eq!(dfs.get("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn survives_single_datanode_failure() {
        let dfs = MiniDfs::new(3, 2, 64).unwrap();
        let data = vec![7u8; 500];
        dfs.put("f", &data).unwrap();
        dfs.kill_datanode(0);
        assert_eq!(dfs.get("f").unwrap(), data, "replication should cover one failure");
        assert!(dfs.under_replicated_blocks() > 0);
        dfs.revive_datanode(0);
        assert_eq!(dfs.under_replicated_blocks(), 0);
    }

    #[test]
    fn unreplicated_cluster_loses_data_on_failure() {
        let dfs = MiniDfs::new(2, 1, 64).unwrap();
        dfs.put("f", &vec![1u8; 200]).unwrap();
        dfs.kill_datanode(0);
        dfs.kill_datanode(1);
        assert!(dfs.get("f").is_err());
    }

    #[test]
    fn put_fails_without_enough_live_nodes() {
        let dfs = MiniDfs::new(2, 2, 64).unwrap();
        dfs.kill_datanode(1);
        assert!(dfs.put("f", &[1, 2, 3]).is_err());
    }

    #[test]
    fn missing_file_is_not_found() {
        let dfs = MiniDfs::new(2, 1, 64).unwrap();
        match dfs.get("ghost") {
            Err(Error::NotFound(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overwrite_replaces_content() {
        let dfs = MiniDfs::new(2, 1, 64).unwrap();
        dfs.put("f", b"old").unwrap();
        dfs.put("f", b"new content").unwrap();
        assert_eq!(dfs.get("f").unwrap(), b"new content");
        assert_eq!(dfs.file_count(), 1);
    }
}
