//! Storage and transport substrate.
//!
//! The VCD stages inputs and exposes them to engines under test in
//! several ways (§3.2):
//!
//! * **flat files** on a local file system ([`flat::FlatStore`]) —
//!   offline mode, single node;
//! * a **distributed file system** ([`dfs::MiniDfs`], the HDFS
//!   analogue) — offline mode for distributed engines: replicated
//!   fixed-size blocks over in-process "datanodes" with failover;
//! * **named pipes** ([`pipe`]) — online mode on a single machine:
//!   blocking bounded channels keyed by name;
//! * **RTP** ([`rtp`]) — online mode over a network: RFC 3550-style
//!   packetization with sequence numbers, fragmentation, marker bits,
//!   and a reordering jitter buffer;
//! * a **real-time pacer** ([`pacer`]) that throttles delivery to the
//!   camera's capture rate ("the VCD blocks on attempts to read video
//!   data beyond this rate").

pub mod dfs;
pub mod flat;
pub mod pacer;
pub mod pipe;
pub mod rtp;

pub use dfs::MiniDfs;
pub use flat::FlatStore;
pub use pacer::Pacer;
