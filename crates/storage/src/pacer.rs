//! Real-time pacing for online mode.
//!
//! "Video data is throttled to a simulated real-time throughput (i.e.,
//! the VCD exposes video frames at the corresponding camera's capture
//! rate). The VCD blocks on attempts to read video data beyond this
//! rate." (§3.2)

use std::time::{Duration, Instant};
use vr_base::FrameRate;

/// Blocks callers until each frame's wall-clock release time.
///
/// `speedup` scales simulated time (e.g. 10.0 plays a 30 FPS stream at
/// 300 FPS) so experiments can exercise the throttling path without
/// waiting out real durations; 1.0 is faithful real time.
#[derive(Debug)]
pub struct Pacer {
    start: Instant,
    interval: Duration,
}

impl Pacer {
    /// A pacer for `rate` at real time.
    pub fn new(rate: FrameRate) -> Self {
        Self::with_speedup(rate, 1.0)
    }

    /// A pacer running `speedup`× faster than real time.
    pub fn with_speedup(rate: FrameRate, speedup: f64) -> Self {
        assert!(speedup > 0.0);
        let interval = Duration::from_secs_f64(rate.frame_interval_secs() / speedup);
        Self { start: Instant::now(), interval }
    }

    /// Release time of frame `index`.
    pub fn release_time(&self, index: u64) -> Instant {
        self.start + self.interval * index as u32
    }

    /// Block until frame `index` may be delivered; returns how long
    /// the call slept (zero when the consumer is behind real time).
    pub fn wait_for_frame(&self, index: u64) -> Duration {
        let release = self.release_time(index);
        let now = Instant::now();
        if release > now {
            let d = release - now;
            std::thread::sleep(d);
            d
        } else {
            Duration::ZERO
        }
    }

    /// The pacing interval between frames.
    pub fn interval(&self) -> Duration {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttles_a_fast_consumer() {
        // 1000 simulated FPS → 1 ms interval; reading 20 frames
        // immediately must take ≈ 19 ms.
        let pacer = Pacer::with_speedup(FrameRate(50), 20.0);
        assert_eq!(pacer.interval(), Duration::from_millis(1));
        let t0 = Instant::now();
        let mut slept = Duration::ZERO;
        for i in 0..20 {
            slept += pacer.wait_for_frame(i);
        }
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(15), "elapsed {elapsed:?}");
        assert!(slept > Duration::ZERO);
    }

    #[test]
    fn never_blocks_a_slow_consumer() {
        let pacer = Pacer::with_speedup(FrameRate(30), 1000.0);
        std::thread::sleep(Duration::from_millis(20));
        // All of these frames are already released.
        for i in 0..10 {
            assert_eq!(pacer.wait_for_frame(i), Duration::ZERO);
        }
    }

    #[test]
    fn release_times_are_evenly_spaced() {
        let pacer = Pacer::new(FrameRate(30));
        let d = pacer.release_time(30) - pacer.release_time(0);
        let want = Duration::from_secs_f64(1.0);
        let err = d.abs_diff(want);
        assert!(err < Duration::from_millis(2), "spacing error {err:?}");
    }
}
