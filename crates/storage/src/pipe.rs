//! Named-pipe transport for online mode on a single machine.
//!
//! §3.2: "a VDBMS may access each video using either a named pipe (on
//! a single local file system) or via the RTP protocol". This module
//! provides the named-pipe side as bounded blocking channels in a
//! process-wide registry — the same blocking semantics as a FIFO
//! (writers block when the pipe is full, readers block when it is
//! empty) without requiring OS-specific mkfifo.

use std::collections::HashMap;
use vr_base::fault::{self, IoOp};
use vr_base::sync::{channel, Mutex, Receiver, Sender};
use vr_base::{BufSlice, Error, Result};

/// Writing half of a pipe. Messages are [`BufSlice`] views, so pushing
/// a container sample through a pipe shares the file bytes instead of
/// copying them per message.
pub struct PipeWriter {
    tx: Sender<BufSlice>,
}

/// Reading half of a pipe (forward-only, blocking).
pub struct PipeReader {
    rx: Receiver<BufSlice>,
}

impl PipeWriter {
    /// Write one message, blocking while the pipe is full. Accepts
    /// anything convertible to a [`BufSlice`] (a `Vec<u8>`, a
    /// `SharedBuf`, or a zero-copy container-sample view). Fails when
    /// the reader is gone; transient (injected) write faults are
    /// retried with bounded, seeded backoff.
    pub fn write(&self, data: impl Into<BufSlice>) -> Result<()> {
        let mut data = Some(data.into());
        fault::with_retry("pipe.write", || {
            if let Some(inj) = fault::global() {
                if let Some(e) = inj.io_fail(IoOp::Write) {
                    return Err(e);
                }
            }
            let payload = data.take().expect("payload consumed only by a successful send");
            match self.tx.send(payload) {
                Ok(()) => Ok(()),
                Err(vr_base::sync::SendError(payload)) => {
                    data = Some(payload);
                    Err(Error::Io(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "reader closed",
                    )))
                }
            }
        })
    }
}

impl PipeReader {
    /// Read the next message, blocking while the pipe is empty.
    /// Returns `None` when the writer is closed and the pipe drained.
    pub fn read(&self) -> Option<BufSlice> {
        self.rx.recv().ok()
    }

    /// Non-blocking read.
    pub fn try_read(&self) -> Option<BufSlice> {
        self.rx.try_recv().ok()
    }
}

/// A registry of named pipes.
#[derive(Default)]
pub struct PipeRegistry {
    pipes: Mutex<HashMap<String, Receiver<BufSlice>>>,
}

impl PipeRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a pipe with the given name and buffer capacity
    /// (messages). Returns the writer; the reader is claimed with
    /// [`open`](Self::open).
    pub fn create(&self, name: &str, capacity: usize) -> Result<PipeWriter> {
        let mut pipes = self.pipes.lock();
        if pipes.contains_key(name) {
            return Err(Error::InvalidConfig(format!("pipe {name} already exists")));
        }
        let (tx, rx) = channel(capacity.max(1));
        pipes.insert(name.to_string(), rx);
        Ok(PipeWriter { tx })
    }

    /// Claim the reading end of a named pipe (each pipe has one
    /// reader).
    pub fn open(&self, name: &str) -> Result<PipeReader> {
        let mut pipes = self.pipes.lock();
        let rx = pipes
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("pipe {name}")))?;
        Ok(PipeReader { rx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn messages_flow_in_order() {
        let reg = PipeRegistry::new();
        let w = reg.create("cam-0", 8).unwrap();
        let r = reg.open("cam-0").unwrap();
        w.write(vec![1]).unwrap();
        w.write(vec![2]).unwrap();
        assert_eq!(r.read().unwrap(), vec![1]);
        assert_eq!(r.read().unwrap(), vec![2]);
        drop(w);
        assert!(r.read().is_none(), "closed and drained");
    }

    #[test]
    fn duplicate_names_rejected() {
        let reg = PipeRegistry::new();
        let _w = reg.create("x", 1).unwrap();
        assert!(reg.create("x", 1).is_err());
        assert!(reg.open("missing").is_err());
    }

    #[test]
    fn writer_blocks_when_full() {
        let reg = PipeRegistry::new();
        let w = reg.create("slow", 1).unwrap();
        let r = reg.open("slow").unwrap();
        w.write(vec![0]).unwrap();
        // A second write must block until the reader drains.
        let handle = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            w.write(vec![1]).unwrap();
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(r.read().unwrap(), vec![0]);
        let blocked_for = handle.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(40),
            "writer should have blocked, took {blocked_for:?}"
        );
        assert_eq!(r.read().unwrap(), vec![1]);
    }

    #[test]
    fn broken_pipe_is_an_error() {
        let reg = PipeRegistry::new();
        let w = reg.create("b", 4).unwrap();
        let r = reg.open("b").unwrap();
        drop(r);
        assert!(w.write(vec![1]).is_err());
    }

    #[test]
    fn try_read_does_not_block() {
        let reg = PipeRegistry::new();
        let w = reg.create("t", 4).unwrap();
        let r = reg.open("t").unwrap();
        assert!(r.try_read().is_none());
        w.write(vec![5]).unwrap();
        assert_eq!(r.try_read().unwrap(), vec![5]);
    }
}
