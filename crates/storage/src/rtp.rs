//! RTP-style packetization (RFC 3550 shape) for online mode over a
//! network.
//!
//! Encoded frames are fragmented to an MTU, each fragment carrying a
//! 12-byte header (version, marker on the final fragment of a frame,
//! payload type, sequence number, media timestamp, SSRC). The
//! depacketizer reorders by sequence number in a bounded jitter
//! buffer and reassembles frames.

use std::collections::BTreeMap;
use vr_base::{Error, Result};

/// RTP header (the RFC 3550 fixed part, no CSRC list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpHeader {
    /// Protocol version; always 2.
    pub version: u8,
    /// Set on the final packet of a frame.
    pub marker: bool,
    /// Payload type (96 = dynamic video).
    pub payload_type: u8,
    /// Monotone per-packet sequence number (wraps at 2¹⁶).
    pub sequence: u16,
    /// Media timestamp shared by all fragments of a frame.
    pub timestamp: u32,
    /// Synchronization source (one per camera stream).
    pub ssrc: u32,
}

/// Header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Dynamic video payload type.
pub const PAYLOAD_TYPE_VIDEO: u8 = 96;

impl RtpHeader {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(self.version << 6);
        out.push(((self.marker as u8) << 7) | (self.payload_type & 0x7F));
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
    }

    /// Parse the header from the start of a packet.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Corrupt("short RTP packet".into()));
        }
        let version = data[0] >> 6;
        if version != 2 {
            return Err(Error::Corrupt(format!("RTP version {version}")));
        }
        Ok(Self {
            version,
            marker: data[1] >> 7 == 1,
            payload_type: data[1] & 0x7F,
            sequence: u16::from_be_bytes([data[2], data[3]]),
            timestamp: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ssrc: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
        })
    }
}

/// Fragments frames into RTP packets.
pub struct RtpPacketizer {
    ssrc: u32,
    mtu: usize,
    next_seq: u16,
}

impl RtpPacketizer {
    /// Create a packetizer for one stream. `mtu` bounds the total
    /// packet size (header + payload).
    pub fn new(ssrc: u32, mtu: usize) -> Self {
        assert!(mtu > HEADER_LEN, "mtu must exceed the header");
        Self { ssrc, mtu, next_seq: 0 }
    }

    /// Packetize one encoded frame stamped with `timestamp` (media
    /// clock units).
    pub fn packetize(&mut self, frame: &[u8], timestamp: u32) -> Vec<Vec<u8>> {
        let chunk = self.mtu - HEADER_LEN;
        let chunks: Vec<&[u8]> =
            if frame.is_empty() { vec![&[][..]] } else { frame.chunks(chunk).collect() };
        let n = chunks.len();
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let header = RtpHeader {
                    version: 2,
                    marker: i == n - 1,
                    payload_type: PAYLOAD_TYPE_VIDEO,
                    sequence: self.next_seq,
                    timestamp,
                    ssrc: self.ssrc,
                };
                self.next_seq = self.next_seq.wrapping_add(1);
                let mut pkt = Vec::with_capacity(HEADER_LEN + c.len());
                header.write(&mut pkt);
                pkt.extend_from_slice(c);
                pkt
            })
            .collect()
    }
}

/// Reorders packets and reassembles frames.
pub struct RtpDepacketizer {
    expected_ssrc: u32,
    /// Out-of-order packets keyed by sequence distance from `next`.
    buffer: BTreeMap<u16, (RtpHeader, Vec<u8>)>,
    next_seq: u16,
    /// Payload fragments of the in-progress frame.
    current: Vec<u8>,
}

impl RtpDepacketizer {
    /// Create a depacketizer for a stream whose first packet carries
    /// sequence number 0 (what [`RtpPacketizer::new`] produces). For
    /// mid-stream joins use
    /// [`with_initial_sequence`](Self::with_initial_sequence) —
    /// without a known start, a reordered stream head is ambiguous.
    pub fn new(ssrc: u32) -> Self {
        Self::with_initial_sequence(ssrc, 0)
    }

    /// Create a depacketizer expecting the first packet at `seq`.
    pub fn with_initial_sequence(ssrc: u32, seq: u16) -> Self {
        Self {
            expected_ssrc: ssrc,
            buffer: BTreeMap::new(),
            next_seq: seq,
            current: Vec::new(),
        }
    }

    /// Feed one packet (possibly out of order); returns any frames
    /// completed by it, in order.
    pub fn push(&mut self, packet: &[u8]) -> Result<Vec<Vec<u8>>> {
        let header = RtpHeader::parse(packet)?;
        if header.ssrc != self.expected_ssrc {
            return Err(Error::Corrupt(format!(
                "unexpected SSRC {:#x} (want {:#x})",
                header.ssrc, self.expected_ssrc
            )));
        }
        let payload = packet[HEADER_LEN..].to_vec();
        self.buffer.insert(header.sequence, (header, payload));
        // Drain in-order packets.
        let mut frames = Vec::new();
        while let Some((header, payload)) = self.buffer.remove(&self.next_seq) {
            self.current.extend_from_slice(&payload);
            if header.marker {
                frames.push(std::mem::take(&mut self.current));
            }
            self.next_seq = self.next_seq.wrapping_add(1);
        }
        Ok(frames)
    }

    /// Packets waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_small_frame() {
        let mut tx = RtpPacketizer::new(7, 1500);
        let mut rx = RtpDepacketizer::new(7);
        let pkts = tx.packetize(b"frame-data", 3000);
        assert_eq!(pkts.len(), 1);
        let frames = rx.push(&pkts[0]).unwrap();
        assert_eq!(frames, vec![b"frame-data".to_vec()]);
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let mut tx = RtpPacketizer::new(1, 64);
        let mut rx = RtpDepacketizer::new(1);
        let frame: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let pkts = tx.packetize(&frame, 0);
        assert!(pkts.len() > 5);
        // Only the last packet carries the marker.
        for (i, p) in pkts.iter().enumerate() {
            let h = RtpHeader::parse(p).unwrap();
            assert_eq!(h.marker, i == pkts.len() - 1);
            assert!(p.len() <= 64);
        }
        let mut frames = Vec::new();
        for p in &pkts {
            frames.extend(rx.push(p).unwrap());
        }
        assert_eq!(frames, vec![frame]);
    }

    #[test]
    fn out_of_order_delivery_is_reordered() {
        let mut tx = RtpPacketizer::new(2, 32);
        let mut rx = RtpDepacketizer::new(2);
        let frame: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        let mut pkts = tx.packetize(&frame, 0);
        pkts.swap(0, 2);
        pkts.swap(1, 3);
        let mut frames = Vec::new();
        for p in &pkts {
            frames.extend(rx.push(p).unwrap());
        }
        assert_eq!(frames, vec![frame]);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn multiple_frames_share_one_stream() {
        let mut tx = RtpPacketizer::new(3, 48);
        let mut rx = RtpDepacketizer::new(3);
        let a = vec![1u8; 80];
        let b = vec![2u8; 10];
        let mut got = Vec::new();
        for p in tx.packetize(&a, 0) {
            got.extend(rx.push(&p).unwrap());
        }
        for p in tx.packetize(&b, 3000) {
            got.extend(rx.push(&p).unwrap());
        }
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn wrong_ssrc_and_garbage_rejected() {
        let mut tx = RtpPacketizer::new(9, 100);
        let mut rx = RtpDepacketizer::new(10);
        let pkts = tx.packetize(b"x", 0);
        assert!(rx.push(&pkts[0]).is_err());
        assert!(rx.push(&[0u8; 4]).is_err());
        // Bad version bits.
        let mut bad = pkts[0].clone();
        bad[0] = 0;
        assert!(RtpHeader::parse(&bad).is_err());
    }

    #[test]
    fn sequence_wraps_across_u16() {
        let mut tx = RtpPacketizer::new(4, 32);
        tx.next_seq = u16::MAX - 1;
        let mut rx = RtpDepacketizer::with_initial_sequence(4, u16::MAX - 1);
        let frame = vec![9u8; 100]; // several packets crossing the wrap
        let mut got = Vec::new();
        for p in tx.packetize(&frame, 0) {
            got.extend(rx.push(&p).unwrap());
        }
        assert_eq!(got, vec![frame]);
    }
}
