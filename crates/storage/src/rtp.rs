//! RTP-style packetization (RFC 3550 shape) for online mode over a
//! network.
//!
//! Encoded frames are fragmented to an MTU, each fragment carrying a
//! 12-byte header (version, marker on the final fragment of a frame,
//! payload type, sequence number, media timestamp, SSRC). The
//! depacketizer reorders by sequence number in a bounded jitter
//! buffer and reassembles frames.

use std::collections::BTreeMap;
use vr_base::{Error, Result};

/// RTP header (the RFC 3550 fixed part, no CSRC list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpHeader {
    /// Protocol version; always 2.
    pub version: u8,
    /// Set on the final packet of a frame.
    pub marker: bool,
    /// Payload type (96 = dynamic video).
    pub payload_type: u8,
    /// Monotone per-packet sequence number (wraps at 2¹⁶).
    pub sequence: u16,
    /// Media timestamp shared by all fragments of a frame.
    pub timestamp: u32,
    /// Synchronization source (one per camera stream).
    pub ssrc: u32,
}

/// Header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Dynamic video payload type.
pub const PAYLOAD_TYPE_VIDEO: u8 = 96;

impl RtpHeader {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(self.version << 6);
        out.push(((self.marker as u8) << 7) | (self.payload_type & 0x7F));
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
    }

    /// Parse the header from the start of a packet.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Corrupt("short RTP packet".into()));
        }
        let version = data[0] >> 6;
        if version != 2 {
            return Err(Error::Corrupt(format!("RTP version {version}")));
        }
        Ok(Self {
            version,
            marker: data[1] >> 7 == 1,
            payload_type: data[1] & 0x7F,
            sequence: u16::from_be_bytes([data[2], data[3]]),
            timestamp: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ssrc: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
        })
    }
}

/// Fragments frames into RTP packets.
pub struct RtpPacketizer {
    ssrc: u32,
    mtu: usize,
    next_seq: u16,
}

impl RtpPacketizer {
    /// Create a packetizer for one stream. `mtu` bounds the total
    /// packet size (header + payload).
    pub fn new(ssrc: u32, mtu: usize) -> Self {
        assert!(mtu > HEADER_LEN, "mtu must exceed the header");
        Self { ssrc, mtu, next_seq: 0 }
    }

    /// Packetize one encoded frame stamped with `timestamp` (media
    /// clock units).
    pub fn packetize(&mut self, frame: &[u8], timestamp: u32) -> Vec<Vec<u8>> {
        let chunk = self.mtu - HEADER_LEN;
        let chunks: Vec<&[u8]> =
            if frame.is_empty() { vec![&[][..]] } else { frame.chunks(chunk).collect() };
        let n = chunks.len();
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let header = RtpHeader {
                    version: 2,
                    marker: i == n - 1,
                    payload_type: PAYLOAD_TYPE_VIDEO,
                    sequence: self.next_seq,
                    timestamp,
                    ssrc: self.ssrc,
                };
                self.next_seq = self.next_seq.wrapping_add(1);
                let mut pkt = Vec::with_capacity(HEADER_LEN + c.len());
                header.write(&mut pkt);
                pkt.extend_from_slice(c);
                pkt
            })
            .collect()
    }
}

/// Default bound on out-of-order packets held while waiting for a gap
/// to fill; beyond it the depacketizer declares the gap a loss and
/// skips ahead.
pub const DEFAULT_JITTER_CAPACITY: usize = 64;

/// Reorders packets and reassembles frames.
///
/// The jitter buffer is **bounded**: a gap that stays unfilled while
/// more than the capacity of later packets pile up is declared lost.
/// The depacketizer then skips to the nearest buffered sequence
/// number, discards any frame left incomplete by the gap, and counts
/// every skipped packet in [`skipped`](Self::skipped) — a lost packet
/// degrades one frame instead of stalling reassembly forever.
pub struct RtpDepacketizer {
    expected_ssrc: u32,
    /// Out-of-order packets keyed by sequence distance from `next`.
    buffer: BTreeMap<u16, (RtpHeader, Vec<u8>)>,
    next_seq: u16,
    /// Payload fragments of the in-progress frame.
    current: Vec<u8>,
    /// Bound on `buffer` before a gap is declared lost.
    capacity: usize,
    /// After a gap skip, drop fragments until the next frame boundary
    /// (a truncated frame must not be emitted as if whole).
    discard_until_marker: bool,
    /// Total packets declared lost and skipped over.
    skipped: u64,
}

impl RtpDepacketizer {
    /// Create a depacketizer for a stream whose first packet carries
    /// sequence number 0 (what [`RtpPacketizer::new`] produces). For
    /// mid-stream joins use
    /// [`with_initial_sequence`](Self::with_initial_sequence) —
    /// without a known start, a reordered stream head is ambiguous.
    pub fn new(ssrc: u32) -> Self {
        Self::with_initial_sequence(ssrc, 0)
    }

    /// Create a depacketizer expecting the first packet at `seq`.
    pub fn with_initial_sequence(ssrc: u32, seq: u16) -> Self {
        Self {
            expected_ssrc: ssrc,
            buffer: BTreeMap::new(),
            next_seq: seq,
            current: Vec::new(),
            capacity: DEFAULT_JITTER_CAPACITY,
            discard_until_marker: false,
            skipped: 0,
        }
    }

    /// Override the jitter-buffer bound (tests; `cap >= 1`).
    pub fn with_capacity(mut self, cap: usize) -> Self {
        self.capacity = cap.max(1);
        self
    }

    /// Feed one packet (possibly out of order); returns any frames
    /// completed by it, in order. Frames truncated by a declared
    /// packet loss are dropped, never emitted partially.
    pub fn push(&mut self, packet: &[u8]) -> Result<Vec<Vec<u8>>> {
        let header = RtpHeader::parse(packet)?;
        if header.ssrc != self.expected_ssrc {
            return Err(Error::Corrupt(format!(
                "unexpected SSRC {:#x} (want {:#x})",
                header.ssrc, self.expected_ssrc
            )));
        }
        // Ignore stale (already consumed or skipped) sequence numbers:
        // wrapping distance >= 2^15 means the packet is behind us.
        if header.sequence.wrapping_sub(self.next_seq) >= 0x8000 {
            return Ok(Vec::new());
        }
        let payload = packet[HEADER_LEN..].to_vec();
        self.buffer.insert(header.sequence, (header, payload));
        let mut frames = Vec::new();
        self.drain_ready(&mut frames);
        // A gap that outlives the jitter window is a loss: skip it.
        while self.buffer.len() > self.capacity {
            self.skip_gap();
            self.drain_ready(&mut frames);
        }
        Ok(frames)
    }

    /// Pull consecutive packets out of the reorder buffer.
    fn drain_ready(&mut self, frames: &mut Vec<Vec<u8>>) {
        while let Some((header, payload)) = self.buffer.remove(&self.next_seq) {
            if self.discard_until_marker {
                if header.marker {
                    self.discard_until_marker = false;
                    self.current.clear();
                }
            } else {
                self.current.extend_from_slice(&payload);
                if header.marker {
                    frames.push(std::mem::take(&mut self.current));
                }
            }
            self.next_seq = self.next_seq.wrapping_add(1);
        }
    }

    /// Declare the gap in front of `next_seq` lost: jump to the
    /// nearest buffered sequence number and arrange for the frame the
    /// gap tore to be discarded at its boundary.
    fn skip_gap(&mut self) {
        let Some(seq) = self.buffer.keys().copied().min_by_key(|s| s.wrapping_sub(self.next_seq))
        else {
            return;
        };
        let dist = seq.wrapping_sub(self.next_seq) as u64;
        if dist == 0 {
            return;
        }
        self.skipped += dist;
        self.next_seq = seq;
        // The in-progress frame (and the one the skipped packets
        // belonged to) is torn; drop fragments until a frame boundary.
        self.current.clear();
        self.discard_until_marker = true;
    }

    /// End of stream: the sender produced packets up to (excluding)
    /// `end_seq`. Flushes everything still reorderable, declares any
    /// remaining gaps lost, and returns the frames recovered. After
    /// this, [`skipped`](Self::skipped) is the exact count of packets
    /// that never arrived.
    pub fn finish(&mut self, end_seq: u16) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        self.drain_ready(&mut frames);
        while !self.buffer.is_empty() {
            self.skip_gap();
            self.drain_ready(&mut frames);
        }
        // Tail packets that never arrived.
        let tail = end_seq.wrapping_sub(self.next_seq) as u64;
        if tail > 0 && tail < 0x8000 {
            self.skipped += tail;
            self.next_seq = end_seq;
            self.current.clear();
            self.discard_until_marker = false;
        }
        frames
    }

    /// Packets waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Total packets declared lost and skipped over so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_small_frame() {
        let mut tx = RtpPacketizer::new(7, 1500);
        let mut rx = RtpDepacketizer::new(7);
        let pkts = tx.packetize(b"frame-data", 3000);
        assert_eq!(pkts.len(), 1);
        let frames = rx.push(&pkts[0]).unwrap();
        assert_eq!(frames, vec![b"frame-data".to_vec()]);
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let mut tx = RtpPacketizer::new(1, 64);
        let mut rx = RtpDepacketizer::new(1);
        let frame: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let pkts = tx.packetize(&frame, 0);
        assert!(pkts.len() > 5);
        // Only the last packet carries the marker.
        for (i, p) in pkts.iter().enumerate() {
            let h = RtpHeader::parse(p).unwrap();
            assert_eq!(h.marker, i == pkts.len() - 1);
            assert!(p.len() <= 64);
        }
        let mut frames = Vec::new();
        for p in &pkts {
            frames.extend(rx.push(p).unwrap());
        }
        assert_eq!(frames, vec![frame]);
    }

    #[test]
    fn out_of_order_delivery_is_reordered() {
        let mut tx = RtpPacketizer::new(2, 32);
        let mut rx = RtpDepacketizer::new(2);
        let frame: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        let mut pkts = tx.packetize(&frame, 0);
        pkts.swap(0, 2);
        pkts.swap(1, 3);
        let mut frames = Vec::new();
        for p in &pkts {
            frames.extend(rx.push(p).unwrap());
        }
        assert_eq!(frames, vec![frame]);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn multiple_frames_share_one_stream() {
        let mut tx = RtpPacketizer::new(3, 48);
        let mut rx = RtpDepacketizer::new(3);
        let a = vec![1u8; 80];
        let b = vec![2u8; 10];
        let mut got = Vec::new();
        for p in tx.packetize(&a, 0) {
            got.extend(rx.push(&p).unwrap());
        }
        for p in tx.packetize(&b, 3000) {
            got.extend(rx.push(&p).unwrap());
        }
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn wrong_ssrc_and_garbage_rejected() {
        let mut tx = RtpPacketizer::new(9, 100);
        let mut rx = RtpDepacketizer::new(10);
        let pkts = tx.packetize(b"x", 0);
        assert!(rx.push(&pkts[0]).is_err());
        assert!(rx.push(&[0u8; 4]).is_err());
        // Bad version bits.
        let mut bad = pkts[0].clone();
        bad[0] = 0;
        assert!(RtpHeader::parse(&bad).is_err());
    }

    #[test]
    fn bounded_buffer_skips_lost_packet_and_counts_it() {
        let mut tx = RtpPacketizer::new(5, 24); // 12-byte payloads
        let mut rx = RtpDepacketizer::new(5).with_capacity(4);
        // Three frames of 3 packets each; drop the middle packet of
        // frame 1 (seq 4).
        let frames: Vec<Vec<u8>> = (0..3).map(|f| vec![f as u8; 30]).collect();
        let mut got = Vec::new();
        let mut end_seq = 0u16;
        for (fi, frame) in frames.iter().enumerate() {
            for (pi, p) in tx.packetize(frame, fi as u32).into_iter().enumerate() {
                end_seq = end_seq.wrapping_add(1);
                if fi == 1 && pi == 1 {
                    continue; // lost on the wire
                }
                got.extend(rx.push(&p).unwrap());
            }
        }
        got.extend(rx.finish(end_seq));
        // Frames 0 and 2 recovered whole; torn frame 1 never emitted.
        assert_eq!(got, vec![frames[0].clone(), frames[2].clone()]);
        assert_eq!(rx.skipped(), 1);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn finish_accounts_tail_loss_exactly() {
        let mut tx = RtpPacketizer::new(6, 24);
        let mut rx = RtpDepacketizer::new(6);
        let frame = vec![7u8; 30]; // 3 packets
        let pkts = tx.packetize(&frame, 0);
        assert_eq!(pkts.len(), 3);
        // Deliver only the first packet; the rest are lost.
        let out = rx.push(&pkts[0]).unwrap();
        assert!(out.is_empty());
        let out = rx.finish(3);
        assert!(out.is_empty(), "torn frame must not surface");
        assert_eq!(rx.skipped(), 2);
        // A clean stream reports zero loss through finish.
        let mut rx = RtpDepacketizer::new(6);
        let mut got = Vec::new();
        for p in &pkts {
            // Re-packetize under the same ssrc/sequence numbering.
            got.extend(rx.push(p).unwrap());
        }
        got.extend(rx.finish(3));
        assert_eq!(got, vec![frame]);
        assert_eq!(rx.skipped(), 0);
    }

    #[test]
    fn stale_packets_are_ignored_after_a_skip() {
        let mut tx = RtpPacketizer::new(8, 24);
        let mut rx = RtpDepacketizer::new(8).with_capacity(2);
        let a = vec![1u8; 30];
        let b = vec![2u8; 30];
        let pkts_a = tx.packetize(&a, 0);
        let pkts_b = tx.packetize(&b, 1);
        // Drop all of frame A except its last packet; push frame B so
        // the bounded buffer forces a skip past the gap.
        let mut got = Vec::new();
        got.extend(rx.push(&pkts_a[2]).unwrap());
        for p in &pkts_b {
            got.extend(rx.push(p).unwrap());
        }
        got.extend(rx.finish(6));
        assert_eq!(got, vec![b]);
        assert_eq!(rx.skipped(), 2, "the two missing packets of frame A");
        // A very late duplicate of an already-skipped packet is inert.
        assert!(rx.push(&pkts_a[0]).unwrap().is_empty());
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn sequence_wraps_across_u16() {
        let mut tx = RtpPacketizer::new(4, 32);
        tx.next_seq = u16::MAX - 1;
        let mut rx = RtpDepacketizer::with_initial_sequence(4, u16::MAX - 1);
        let frame = vec![9u8; 100]; // several packets crossing the wrap
        let mut got = Vec::new();
        for p in tx.packetize(&frame, 0) {
            got.extend(rx.push(&p).unwrap());
        }
        assert_eq!(got, vec![frame]);
    }
}
