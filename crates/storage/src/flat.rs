//! Directory-backed flat-file store.
//!
//! The VCG "encodes \[videos\] using the H264 codec and stores \[them\] as
//! flat files" (§3.1). This is the thinnest possible wrapper over a
//! directory, with name sanitation so benchmark-generated identifiers
//! can never escape the store root.

use std::path::{Path, PathBuf};
use vr_base::fault::{self, IoOp};
use vr_base::{Error, Result, SharedBuf};

/// A flat-file store rooted at a directory.
#[derive(Debug, Clone)]
pub struct FlatStore {
    root: PathBuf,
}

impl FlatStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// A store under the system temp directory, namespaced by `tag`
    /// and the process id (tests and examples).
    pub fn temp(tag: &str) -> Result<Self> {
        let dir = std::env::temp_dir()
            .join("visual-road")
            .join(format!("{tag}-{}", std::process::id()));
        Self::open(dir)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> Result<PathBuf> {
        if name.is_empty()
            || name.contains("..")
            || name.starts_with('/')
            || name.contains('\\')
        {
            return Err(Error::InvalidConfig(format!("illegal store name: {name:?}")));
        }
        Ok(self.root.join(name))
    }

    /// Write (create or replace) a file. Transient I/O failures
    /// (injected or real) are retried with bounded, seeded backoff.
    pub fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        let _span = vr_base::obs::trace::span("storage", "flat.put");
        let path = self.path_of(name)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        fault::with_retry("flat.put", || {
            if let Some(inj) = fault::global() {
                if let Some(e) = inj.io_fail(IoOp::Write) {
                    return Err(e);
                }
            }
            std::fs::write(&path, data)?;
            Ok(())
        })
    }

    /// Read a whole file into a [`SharedBuf`] that downstream
    /// consumers (container parse, pipeline, pipes) share without
    /// copying. The buffer is preallocated from the file length so the
    /// read is a single allocation with no growth reallocations.
    /// Transient I/O failures (injected or real) are retried with
    /// bounded, seeded backoff; a missing file is [`Error::NotFound`]
    /// immediately (retrying cannot help).
    pub fn get(&self, name: &str) -> Result<SharedBuf> {
        let _span = vr_base::obs::trace::span("storage", "flat.get");
        let path = self.path_of(name)?;
        fault::with_retry("flat.get", || {
            if let Some(inj) = fault::global() {
                if let Some(e) = inj.io_fail(IoOp::Read) {
                    return Err(e);
                }
            }
            let map_err = |e: std::io::Error| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    Error::NotFound(format!("{name} in {}", self.root.display()))
                } else {
                    Error::Io(e)
                }
            };
            let mut file = std::fs::File::open(&path).map_err(map_err)?;
            let len = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
            let mut buf = Vec::with_capacity(len);
            std::io::Read::read_to_end(&mut file, &mut buf).map_err(map_err)?;
            Ok(SharedBuf::from_vec(buf))
        })
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.exists()).unwrap_or(false)
    }

    /// Absolute path of an entry (engines that want to read directly).
    pub fn path(&self, name: &str) -> Result<PathBuf> {
        self.path_of(name)
    }

    /// Delete a file (idempotent).
    pub fn delete(&self, name: &str) -> Result<()> {
        let path = self.path_of(name)?;
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Names of all regular files directly under the root (sorted).
    pub fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Remove the entire store from disk.
    pub fn destroy(self) -> Result<()> {
        if self.root.exists() {
            std::fs::remove_dir_all(&self.root)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let store = FlatStore::temp("flat-rt").unwrap();
        store.put("vid-0.vrmf", b"hello").unwrap();
        assert_eq!(store.get("vid-0.vrmf").unwrap(), b"hello");
        assert!(store.exists("vid-0.vrmf"));
        assert!(!store.exists("vid-1.vrmf"));
        store.destroy().unwrap();
    }

    #[test]
    fn nested_names_work() {
        let store = FlatStore::temp("flat-nest").unwrap();
        store.put("tile-0/cam-2.vrmf", b"x").unwrap();
        assert_eq!(store.get("tile-0/cam-2.vrmf").unwrap(), b"x");
        store.destroy().unwrap();
    }

    #[test]
    fn path_traversal_is_rejected() {
        let store = FlatStore::temp("flat-sec").unwrap();
        assert!(store.put("../evil", b"x").is_err());
        assert!(store.put("/abs", b"x").is_err());
        assert!(store.put("", b"x").is_err());
        assert!(store.get("..").is_err());
        store.destroy().unwrap();
    }

    #[test]
    fn missing_file_is_not_found() {
        let store = FlatStore::temp("flat-miss").unwrap();
        match store.get("nope") {
            Err(Error::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        // Deleting a missing file is fine.
        store.delete("nope").unwrap();
        store.destroy().unwrap();
    }

    #[test]
    fn list_is_sorted() {
        let store = FlatStore::temp("flat-list").unwrap();
        store.put("b", b"1").unwrap();
        store.put("a", b"2").unwrap();
        store.put("c", b"3").unwrap();
        assert_eq!(store.list().unwrap(), vec!["a", "b", "c"]);
        store.destroy().unwrap();
    }
}
