//! Ingest-once semantic index.
//!
//! One ingestion pass runs detection/tracking over a dataset's metadata
//! tracks and persists, per traffic video, a set of *tracklet records*:
//! object class, frame extent, an exact per-frame presence bitset, and a
//! compact scalar-quantized feature vector. The records live in a `.vrsx`
//! container side index (CRC-framed sections, see `vr_container::sidecar`).
//! At load time the records are dropped into an in-memory HNSW-style
//! graph so aggregation, top-k, and similarity queries run in
//! microseconds without ever decoding a frame.
//!
//! Everything here is deterministic: quantization is pure arithmetic,
//! the HNSW level draw comes from a [`vr_base::rng::VrRng`] forked from
//! the dataset seed, and all orderings tie-break on record id — so two
//! ingests of the same dataset produce byte-identical side-index files
//! and identical query answers.

pub mod hnsw;
pub mod quant;
pub mod record;
pub mod semantic;

pub use hnsw::{Hnsw, HnswConfig};
pub use quant::Quantized;
pub use record::TrackRecord;
pub use semantic::{
    count_records, similar_records, top_segments_of, SegmentHit, SemanticIndex, EMBED_DIM,
};
