//! Persisted tracklet records — the unit the side index stores.
//!
//! A record is one tracked object instance in one video: its class, its
//! frame extent, an exact per-frame presence bitset (tracklets survive
//! short occlusion gaps, so presence is not a plain interval), and the
//! scalar-quantized embedding the ingest pass extracted. The wire
//! format is fixed-width big-endian via `vr_bitstream::bytesio`, so
//! identical records serialize to identical bytes.

use vr_base::{Error, Result};
use vr_bitstream::bytesio::{ByteReader, ByteWriter};
use vr_scene::entity::ObjectClass;

use crate::quant::Quantized;

/// One tracklet in the side index.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackRecord {
    /// Dataset-global record id (also the HNSW node id).
    pub id: u32,
    /// Dataset video index the tracklet was observed in.
    pub video: u32,
    pub class: ObjectClass,
    /// First frame (inclusive) with an observation.
    pub first_frame: u32,
    /// Last frame (inclusive) with an observation.
    pub last_frame: u32,
    /// Presence bitset over `first_frame..=last_frame` (bit i = frame
    /// `first_frame + i` has an observation).
    pub presence: Vec<u8>,
    /// Quantized embedding.
    pub quant: Quantized,
}

impl TrackRecord {
    /// Number of frames the record spans (gaps included).
    pub fn span(&self) -> u32 {
        self.last_frame - self.first_frame + 1
    }

    /// Whether the tracklet was observed at `frame`.
    pub fn present(&self, frame: u32) -> bool {
        if frame < self.first_frame || frame > self.last_frame {
            return false;
        }
        let bit = (frame - self.first_frame) as usize;
        self.presence[bit / 8] & (1 << (bit % 8)) != 0
    }

    /// Whether any observed frame falls in `[lo, hi]` (inclusive).
    pub fn present_in_range(&self, lo: u32, hi: u32) -> bool {
        let lo = lo.max(self.first_frame);
        let hi = hi.min(self.last_frame);
        (lo..=hi).any(|f| self.present(f))
    }

    fn class_to_u8(class: ObjectClass) -> u8 {
        match class {
            ObjectClass::Vehicle => 0,
            ObjectClass::Pedestrian => 1,
        }
    }

    fn class_from_u8(v: u8) -> Result<ObjectClass> {
        match v {
            0 => Ok(ObjectClass::Vehicle),
            1 => Ok(ObjectClass::Pedestrian),
            other => Err(Error::Corrupt(format!("bad record class {other}"))),
        }
    }
}

/// Serialize a record set (all sharing embedding dimension `dim`).
pub fn serialize_records(dim: usize, records: &[TrackRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(dim as u32);
    w.put_u32(records.len() as u32);
    for r in records {
        debug_assert_eq!(r.quant.dim(), dim);
        debug_assert_eq!(r.presence.len(), (r.span() as usize + 7) / 8);
        w.put_u32(r.id);
        w.put_u32(r.video);
        w.put_u8(TrackRecord::class_to_u8(r.class));
        w.put_u32(r.first_frame);
        w.put_u32(r.last_frame);
        w.put_bytes(&r.presence);
        // Raw IEEE-754 bits: byte-stable across writes.
        w.put_u32(r.quant.min.to_bits());
        w.put_u32(r.quant.scale.to_bits());
        w.put_bytes(&r.quant.codes);
    }
    w.finish()
}

/// Inverse of [`serialize_records`], with structural validation.
pub fn deserialize_records(data: &[u8]) -> Result<(usize, Vec<TrackRecord>)> {
    let mut r = ByteReader::new(data);
    let dim = r.get_u32()? as usize;
    if dim == 0 || dim > 4096 {
        return Err(Error::Corrupt(format!("absurd embedding dimension {dim}")));
    }
    let count = r.get_u32()? as usize;
    if count > 1 << 24 {
        return Err(Error::Corrupt(format!("absurd record count {count}")));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let id = r.get_u32()?;
        if id as usize != i {
            return Err(Error::Corrupt(format!("record id {id} out of order (expected {i})")));
        }
        let video = r.get_u32()?;
        let class = TrackRecord::class_from_u8(r.get_u8()?)?;
        let first_frame = r.get_u32()?;
        let last_frame = r.get_u32()?;
        if last_frame < first_frame {
            return Err(Error::Corrupt(format!("record {id}: inverted frame extent")));
        }
        let span = (last_frame - first_frame) as usize + 1;
        if span > 1 << 20 {
            return Err(Error::Corrupt(format!("record {id}: absurd span {span}")));
        }
        let presence = r.get_bytes((span + 7) / 8)?.to_vec();
        let min = f32::from_bits(r.get_u32()?);
        let scale = f32::from_bits(r.get_u32()?);
        if !min.is_finite() || !scale.is_finite() || scale < 0.0 {
            return Err(Error::Corrupt(format!("record {id}: bad quantization params")));
        }
        let codes = r.get_bytes(dim)?.to_vec();
        let rec = TrackRecord {
            id,
            video,
            class,
            first_frame,
            last_frame,
            presence,
            quant: Quantized { codes, min, scale },
        };
        if !rec.present(first_frame) || !rec.present(last_frame) {
            return Err(Error::Corrupt(format!(
                "record {id}: presence bitset does not cover its extent"
            )));
        }
        out.push(rec);
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after records",
            r.remaining()
        )));
    }
    Ok((dim, out))
}

/// Build the presence bitset for a sorted observation frame list.
pub fn presence_bitset(first: u32, last: u32, observed: &[u32]) -> Vec<u8> {
    let span = (last - first) as usize + 1;
    let mut bits = vec![0u8; (span + 7) / 8];
    for &f in observed {
        debug_assert!((first..=last).contains(&f));
        let bit = (f - first) as usize;
        bits[bit / 8] |= 1 << (bit % 8);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32) -> TrackRecord {
        TrackRecord {
            id,
            video: 1,
            class: if id % 2 == 0 { ObjectClass::Vehicle } else { ObjectClass::Pedestrian },
            first_frame: 3,
            last_frame: 12,
            presence: presence_bitset(3, 12, &[3, 4, 5, 8, 9, 12]),
            quant: Quantized { codes: vec![0, 128, 255, 7], min: -1.5, scale: 0.25 },
        }
    }

    #[test]
    fn presence_semantics() {
        let r = rec(0);
        assert!(r.present(3) && r.present(12) && r.present(8));
        assert!(!r.present(6) && !r.present(2) && !r.present(13));
        assert!(r.present_in_range(6, 8));
        assert!(!r.present_in_range(6, 7));
        assert!(r.present_in_range(0, 100));
    }

    #[test]
    fn round_trip_is_exact_and_deterministic() {
        let records = vec![rec(0), rec(1), rec(2)];
        let a = serialize_records(4, &records);
        let b = serialize_records(4, &records);
        assert_eq!(a, b);
        let (dim, back) = deserialize_records(&a).unwrap();
        assert_eq!(dim, 4);
        assert_eq!(back, records);
    }

    #[test]
    fn validation_rejects_malformed_records() {
        let records = vec![rec(0)];
        let good = serialize_records(4, &records);
        // Truncated.
        assert!(deserialize_records(&good[..good.len() - 2]).is_err());
        // Trailing bytes.
        let mut long = good.clone();
        long.push(0);
        assert!(deserialize_records(&long).is_err());
        // Absurd dimension.
        let mut bad_dim = good;
        bad_dim[0..4].copy_from_slice(&0u32.to_be_bytes());
        assert!(deserialize_records(&bad_dim).is_err());
    }
}
