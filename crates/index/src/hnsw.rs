//! A deterministic HNSW-style navigable small-world graph (std-only).
//!
//! Two departures from the textbook construction keep it reproducible:
//! the level draw for every inserted node comes from a caller-supplied
//! [`VrRng`] (forked from the dataset seed at load time), and every
//! ordering — candidate heaps, neighbor selection, result lists —
//! tie-breaks on node id, so equal distances never fall back to
//! hash-map or allocation order. Insert the same vectors in the same
//! order with the same seed and the graph, and every search over it,
//! is identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vr_base::rng::VrRng;

/// Graph shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max links per node on layers above 0.
    pub m: usize,
    /// Max links per node on layer 0 (conventionally `2 * m`).
    pub m0: usize,
    /// Beam width while building.
    pub ef_construction: usize,
    /// Default beam width while searching.
    pub ef_search: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 8, m0: 16, ef_construction: 64, ef_search: 48 }
    }
}

/// (distance, id) with a total order: distance first, id breaks ties.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbor {
    dist: f32,
    id: u32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances are finite by construction (quantized inputs), so
        // partial_cmp only returns None for NaN, which total_cmp avoids.
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Squared Euclidean distance.
fn l2sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

pub struct Hnsw {
    cfg: HnswConfig,
    dim: usize,
    vectors: Vec<Vec<f32>>,
    /// `links[id][layer]` = neighbor ids on that layer.
    links: Vec<Vec<Vec<u32>>>,
    entry: Option<u32>,
}

impl Hnsw {
    pub fn new(dim: usize, cfg: HnswConfig) -> Self {
        Hnsw { cfg, dim, vectors: Vec::new(), links: Vec::new(), entry: None }
    }

    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    pub fn vector(&self, id: u32) -> &[f32] {
        &self.vectors[id as usize]
    }

    /// Insert a vector; its id is the insertion index. The level draw
    /// consumes exactly one `u64` from `rng` per insert.
    pub fn insert(&mut self, vector: Vec<f32>, rng: &mut VrRng) -> u32 {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let id = self.vectors.len() as u32;
        // Geometric level distribution with p = 1/m: count trailing
        // one-bits drawn in base m. Integer arithmetic keeps the draw
        // bit-stable across platforms (no ln()).
        let mut level = 0usize;
        let mut draw = rng.next_u64();
        while level < 16 && (draw % self.cfg.m as u64) == 0 && self.cfg.m > 1 {
            level += 1;
            draw /= self.cfg.m as u64;
        }
        self.vectors.push(vector);
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            return id;
        };
        let top = self.layer_count(ep) - 1;

        // Greedy descent through layers above the new node's level.
        let q = self.vectors[id as usize].clone();
        let mut layer = top;
        while layer > level {
            ep = self.greedy_closest(&q, ep, layer);
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        // Connect on every layer from min(level, top) down to 0.
        let mut layer = level.min(top);
        loop {
            let found = self.search_layer(&q, ep, layer, self.cfg.ef_construction);
            let cap = if layer == 0 { self.cfg.m0 } else { self.cfg.m };
            let chosen: Vec<u32> = found.iter().take(cap).map(|n| n.id).collect();
            for &nb in &chosen {
                self.links[id as usize][layer].push(nb);
                self.links[nb as usize][layer].push(id);
                self.prune(nb, layer);
            }
            if let Some(best) = found.first() {
                ep = best.id;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        if level > top {
            self.entry = Some(id);
        }
        id
    }

    /// k nearest neighbors of `query`, ordered by (distance, id).
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        self.search_ef(query, k, self.cfg.ef_search)
    }

    pub fn search_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let Some(mut ep) = self.entry else {
            return Vec::new();
        };
        let top = self.layer_count(ep) - 1;
        for layer in (1..=top).rev() {
            ep = self.greedy_closest(query, ep, layer);
        }
        let found = self.search_layer(query, ep, 0, ef.max(k));
        found.into_iter().take(k).map(|n| (n.id, n.dist)).collect()
    }

    fn layer_count(&self, id: u32) -> usize {
        self.links[id as usize].len()
    }

    /// Greedy walk on one layer toward the query's local minimum.
    fn greedy_closest(&self, q: &[f32], mut ep: u32, layer: usize) -> u32 {
        let mut best = Neighbor { dist: l2sq(q, self.vector(ep)), id: ep };
        loop {
            let mut improved = false;
            // Neighbor lists are in deterministic insertion/prune order.
            for &nb in self.neighbors(ep, layer) {
                let cand = Neighbor { dist: l2sq(q, self.vector(nb)), id: nb };
                if cand < best {
                    best = cand;
                    improved = true;
                }
            }
            if !improved {
                return best.id;
            }
            ep = best.id;
        }
    }

    fn neighbors(&self, id: u32, layer: usize) -> &[u32] {
        let layers = &self.links[id as usize];
        if layer < layers.len() {
            &layers[layer]
        } else {
            &[]
        }
    }

    /// Beam search on one layer; returns up to `ef` nearest, sorted by
    /// (distance, id).
    fn search_layer(&self, q: &[f32], ep: u32, layer: usize, ef: usize) -> Vec<Neighbor> {
        let mut visited = vec![false; self.vectors.len()];
        visited[ep as usize] = true;
        let start = Neighbor { dist: l2sq(q, self.vector(ep)), id: ep };
        // Min-heap of frontier candidates, max-heap of current results.
        let mut frontier = BinaryHeap::new();
        frontier.push(std::cmp::Reverse(start));
        let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();
        results.push(start);
        while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
            let worst = results.peek().copied().unwrap();
            if results.len() >= ef && cand > worst {
                break;
            }
            for &nb in self.neighbors(cand.id, layer) {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let n = Neighbor { dist: l2sq(q, self.vector(nb)), id: nb };
                let worst = results.peek().copied().unwrap();
                if results.len() < ef || n < worst {
                    frontier.push(std::cmp::Reverse(n));
                    results.push(n);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort();
        out
    }

    /// Keep a node's neighbor list within the layer cap, retaining the
    /// closest (ties to the lower id).
    fn prune(&mut self, id: u32, layer: usize) {
        let cap = if layer == 0 { self.cfg.m0 } else { self.cfg.m };
        if self.links[id as usize][layer].len() <= cap {
            return;
        }
        let base = self.vectors[id as usize].clone();
        let mut scored: Vec<Neighbor> = self.links[id as usize][layer]
            .iter()
            .map(|&nb| Neighbor { dist: l2sq(&base, self.vector(nb)), id: nb })
            .collect();
        scored.sort();
        scored.dedup_by_key(|n| n.id);
        self.links[id as usize][layer] = scored.into_iter().take(cap).map(|n| n.id).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(seed: u64, n: usize, dim: usize) -> (Hnsw, Vec<Vec<f32>>) {
        let mut rng = VrRng::seed_from(seed);
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.range_f32(-1.0, 1.0)).collect())
            .collect();
        let mut graph = Hnsw::new(dim, HnswConfig::default());
        let mut level_rng = VrRng::seed_from(seed).fork(0x11);
        for v in &vectors {
            graph.insert(v.clone(), &mut level_rng);
        }
        (graph, vectors)
    }

    fn brute_force(vectors: &[Vec<f32>], q: &[f32], k: usize) -> Vec<u32> {
        let mut scored: Vec<Neighbor> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| Neighbor { dist: l2sq(q, v), id: i as u32 })
            .collect();
        scored.sort();
        scored.into_iter().take(k).map(|n| n.id).collect()
    }

    #[test]
    fn insert_and_search_are_deterministic_under_seeded_rng() {
        let (a, _) = build(42, 300, 8);
        let (b, _) = build(42, 300, 8);
        let q = vec![0.1; 8];
        assert_eq!(a.search(&q, 10), b.search(&q, 10));
        // Structural determinism, not just result determinism.
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn different_seed_different_graph_same_quality() {
        let (a, _) = build(1, 200, 8);
        let (b, _) = build(2, 200, 8);
        // Levels are drawn differently, so the graphs differ...
        assert_ne!(a.links, b.links);
        // ...but both still answer (exactness checked below).
        let q = vec![0.0; 8];
        assert_eq!(a.search(&q, 5).len(), 5);
        assert_eq!(b.search(&q, 5).len(), 5);
    }

    #[test]
    fn recall_against_brute_force() {
        let (graph, vectors) = build(7, 400, 12);
        let mut rng = VrRng::seed_from(99);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q: Vec<f32> = (0..12).map(|_| rng.range_f32(-1.0, 1.0)).collect();
            let truth = brute_force(&vectors, &q, 10);
            let got: Vec<u32> = graph.search(&q, 10).into_iter().map(|(id, _)| id).collect();
            hits += got.iter().filter(|id| truth.contains(id)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "HNSW recall {recall} < 0.9 vs brute force");
    }

    #[test]
    fn exact_on_small_sets() {
        // Below ef_construction the beam covers everything: exact.
        let (graph, vectors) = build(3, 40, 6);
        let q = vec![0.25; 6];
        let truth = brute_force(&vectors, &q, 5);
        let got: Vec<u32> = graph.search(&q, 5).into_iter().map(|(id, _)| id).collect();
        assert_eq!(got, truth);
    }

    #[test]
    fn empty_graph_returns_nothing() {
        let graph = Hnsw::new(4, HnswConfig::default());
        assert!(graph.search(&[0.0; 4], 3).is_empty());
    }
}
