//! Scalar quantization: f32 feature vectors compressed to one byte per
//! dimension plus a per-vector affine (min, scale) pair.
//!
//! The codes are what the side index persists; (min, scale) are stored
//! as raw IEEE-754 bits so serialization is byte-deterministic. The
//! reconstruction error of any component is bounded by `scale / 2`
//! (pinned by a unit test), which is plenty for the coarse geometric
//! embeddings the ingest pass produces.

use vr_base::{Error, Result};

/// A scalar-quantized vector: `value[i] ≈ min + codes[i] * scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    pub codes: Vec<u8>,
    pub min: f32,
    pub scale: f32,
}

impl Quantized {
    /// Quantize a vector. A constant vector quantizes with `scale = 0`
    /// and reconstructs exactly.
    pub fn quantize(values: &[f32]) -> Result<Quantized> {
        if values.is_empty() {
            return Err(Error::InvalidConfig("cannot quantize an empty vector".into()));
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                return Err(Error::InvalidConfig(format!("non-finite component {v}")));
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
        let codes = values
            .iter()
            .map(|&v| {
                if scale == 0.0 {
                    0
                } else {
                    // Round-to-nearest; the clamp absorbs float slop at
                    // the top of the range.
                    (((v - lo) / scale) + 0.5).floor().clamp(0.0, 255.0) as u8
                }
            })
            .collect();
        Ok(Quantized { codes, min: lo, scale })
    }

    /// Reconstruct the (lossy) f32 vector.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| self.min + c as f32 * self.scale)
            .collect()
    }

    pub fn dim(&self) -> usize {
        self.codes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_base::rng::VrRng;

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let mut rng = VrRng::seed_from(0x51AB);
        for trial in 0..64 {
            let dim = 4 + (trial % 13);
            let vals: Vec<f32> = (0..dim).map(|_| rng.range_f32(-40.0, 40.0)).collect();
            let q = Quantized::quantize(&vals).unwrap();
            let back = q.dequantize();
            // The bound has a tiny epsilon for the two roundings
            // ((v-min)/scale and min + c*scale) on top of the
            // round-to-nearest half-step.
            let bound = q.scale / 2.0 + 1e-4 * q.scale.max(1.0);
            for (a, b) in vals.iter().zip(&back) {
                assert!(
                    (a - b).abs() <= bound,
                    "trial {trial}: |{a} - {b}| > {bound} (scale {})",
                    q.scale
                );
            }
        }
    }

    #[test]
    fn constant_vector_reconstructs_exactly() {
        let q = Quantized::quantize(&[3.25; 7]).unwrap();
        assert_eq!(q.scale, 0.0);
        assert_eq!(q.dequantize(), vec![3.25; 7]);
    }

    #[test]
    fn extremes_map_to_code_range_ends() {
        let q = Quantized::quantize(&[-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(q.codes[0], 0);
        assert_eq!(q.codes[2], 255);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(Quantized::quantize(&[]).is_err());
        assert!(Quantized::quantize(&[1.0, f32::NAN]).is_err());
        assert!(Quantized::quantize(&[f32::INFINITY]).is_err());
    }

    #[test]
    fn quantization_is_deterministic() {
        let vals = [0.1_f32, 2.7, -3.3, 9.9, 0.0];
        let a = Quantized::quantize(&vals).unwrap();
        let b = Quantized::quantize(&vals).unwrap();
        assert_eq!(a, b);
    }
}
