//! The loaded semantic index: tracklet records + an HNSW graph, serving
//! aggregation / top-k / similarity without touching pixels.
//!
//! Only the records are persisted (`.vrsx` sidecar); the graph is
//! rebuilt at load from a [`VrRng`] forked off the dataset seed, which
//! keeps the file format free of graph internals *and* keeps load
//! deterministic — same sidecar, same graph, same answers.

use std::collections::BTreeMap;

use vr_base::rng::{mix64, VrRng};
use vr_base::{Error, Result};
use vr_container::sidecar::{Sidecar, SidecarWriter};
use vr_scene::entity::ObjectClass;

use crate::hnsw::{Hnsw, HnswConfig};
use crate::record::{deserialize_records, serialize_records, TrackRecord};

/// Embedding dimension the ingest pass produces.
pub const EMBED_DIM: usize = 16;

/// RNG stream tag for the HNSW level draws.
const LEVEL_STREAM: u64 = 0x1DE7;

/// One ranked segment from a top-k query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHit {
    pub video: u32,
    pub segment: u32,
    /// Distinct tracklets of the queried class present in the segment.
    pub count: u32,
}

/// Aggregation over a raw record set. The rescan path answers straight
/// from a fresh scan's records without building an index;
/// [`SemanticIndex::count_distinct`] delegates here so both routes
/// share one definition and can never drift apart.
pub fn count_records(
    records: &[TrackRecord],
    class: Option<ObjectClass>,
    video: Option<u32>,
) -> u64 {
    records
        .iter()
        .filter(|r| class.is_none_or(|c| r.class == c))
        .filter(|r| video.is_none_or(|v| r.video == v))
        .count() as u64
}

/// Top-k time segments by distinct-tracklet count over a raw record
/// set. Segments are fixed windows of `window` frames per video;
/// ranking is count descending with (video, segment) ascending as the
/// deterministic tie-break. Every segment of every video participates,
/// so empty segments can round out the tail of the ranking.
pub fn top_segments_of(
    video_frames: &BTreeMap<u32, u32>,
    records: &[TrackRecord],
    class: Option<ObjectClass>,
    window: u32,
    k: usize,
) -> Vec<SegmentHit> {
    let window = window.max(1);
    let mut counts: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    for (&video, &frames) in video_frames {
        for segment in 0..frames.div_ceil(window) {
            counts.insert((video, segment), 0);
        }
    }
    for rec in records {
        if !class.is_none_or(|c| rec.class == c) {
            continue;
        }
        let first_seg = rec.first_frame / window;
        let last_seg = rec.last_frame / window;
        for segment in first_seg..=last_seg {
            let lo = segment * window;
            let hi = lo + window - 1;
            if rec.present_in_range(lo, hi) {
                if let Some(c) = counts.get_mut(&(rec.video, segment)) {
                    *c += 1;
                }
            }
        }
    }
    let mut hits: Vec<SegmentHit> = counts
        .into_iter()
        .map(|((video, segment), count)| SegmentHit { video, segment, count })
        .collect();
    hits.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.video.cmp(&b.video))
            .then(a.segment.cmp(&b.segment))
    });
    hits.truncate(k);
    hits
}

/// Brute-force k nearest tracklets to `track` by squared-L2 embedding
/// distance (self excluded) — the rescan path's similarity answer,
/// exact and graph-free. Uses the same metric as the HNSW graph so the
/// two routes rank by identical distances.
pub fn similar_records(records: &[TrackRecord], track: u32, k: usize) -> Result<Vec<(u32, f32)>> {
    let Some(anchor) = records.get(track as usize) else {
        return Err(Error::NotFound(format!("tracklet {track} not in record set")));
    };
    let query = anchor.quant.dequantize();
    let mut hits: Vec<(u32, f32)> = records
        .iter()
        .filter(|r| r.id != track)
        .map(|r| {
            let v = r.quant.dequantize();
            let d: f32 = query.iter().zip(&v).map(|(a, b)| (a - b) * (a - b)).sum();
            (r.id, d)
        })
        .collect();
    hits.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    hits.truncate(k);
    Ok(hits)
}

pub struct SemanticIndex {
    seed: u64,
    dim: usize,
    /// Frame count per dataset video index (BTreeMap: only traffic
    /// videos are indexed, and indices need not be contiguous).
    video_frames: BTreeMap<u32, u32>,
    records: Vec<TrackRecord>,
    graph: Hnsw,
}

impl SemanticIndex {
    /// Serialize a record set into `.vrsx` sidecar bytes.
    pub fn to_sidecar_bytes(
        seed: u64,
        video_frames: &BTreeMap<u32, u32>,
        records: &[TrackRecord],
    ) -> Vec<u8> {
        let mut meta = vr_bitstream::bytesio::ByteWriter::new();
        meta.put_u64(seed);
        meta.put_u32(EMBED_DIM as u32);
        meta.put_u32(video_frames.len() as u32);
        for (&video, &frames) in video_frames {
            meta.put_u32(video);
            meta.put_u32(frames);
        }
        let mut w = SidecarWriter::new();
        w.add_section(*b"META", meta.finish());
        w.add_section(*b"TRKS", serialize_records(EMBED_DIM, records));
        w.finish()
    }

    /// Parse sidecar bytes, validate every record against the metadata,
    /// and rebuild the HNSW graph. Fails closed: any inconsistency is
    /// an error, never a partially loaded index.
    pub fn from_sidecar_bytes(bytes: &[u8]) -> Result<SemanticIndex> {
        let sidecar = Sidecar::parse(bytes)?;
        let meta = sidecar
            .section(b"META")
            .ok_or_else(|| Error::Corrupt("sidecar missing META section".into()))?;
        let mut r = vr_bitstream::bytesio::ByteReader::new(meta);
        let seed = r.get_u64()?;
        let dim = r.get_u32()? as usize;
        let video_count = r.get_u32()? as usize;
        if video_count > 1 << 16 {
            return Err(Error::Corrupt(format!("absurd video count {video_count}")));
        }
        let mut video_frames = BTreeMap::new();
        for _ in 0..video_count {
            let video = r.get_u32()?;
            let frames = r.get_u32()?;
            if video_frames.insert(video, frames).is_some() {
                return Err(Error::Corrupt(format!("duplicate video index {video}")));
            }
        }
        if r.remaining() != 0 {
            return Err(Error::Corrupt("trailing bytes in META section".into()));
        }

        let trks = sidecar
            .section(b"TRKS")
            .ok_or_else(|| Error::Corrupt("sidecar missing TRKS section".into()))?;
        let (rec_dim, records) = deserialize_records(trks)?;
        if rec_dim != dim {
            return Err(Error::Corrupt(format!(
                "record dimension {rec_dim} does not match META dimension {dim}"
            )));
        }
        for rec in &records {
            let frames = *video_frames.get(&rec.video).ok_or_else(|| {
                Error::Corrupt(format!("record {} references unknown video {}", rec.id, rec.video))
            })?;
            if rec.last_frame >= frames {
                return Err(Error::Corrupt(format!(
                    "record {} extends past video {} ({} frames)",
                    rec.id, rec.video, frames
                )));
            }
        }

        let mut graph = Hnsw::new(dim, HnswConfig::default());
        let mut rng = VrRng::seed_from(mix64(seed, LEVEL_STREAM));
        for rec in &records {
            graph.insert(rec.quant.dequantize(), &mut rng);
        }
        Ok(SemanticIndex { seed, dim, video_frames, records, graph })
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[TrackRecord] {
        &self.records
    }

    pub fn video_frames(&self) -> &BTreeMap<u32, u32> {
        &self.video_frames
    }

    /// Aggregation: distinct tracklets, optionally filtered by class
    /// and/or video.
    pub fn count_distinct(&self, class: Option<ObjectClass>, video: Option<u32>) -> u64 {
        count_records(&self.records, class, video)
    }

    /// Top-k time segments by distinct-tracklet count. Segments are
    /// fixed windows of `window` frames per video; ranking is count
    /// descending with (video, segment) ascending as the deterministic
    /// tie-break.
    pub fn top_segments(
        &self,
        class: Option<ObjectClass>,
        window: u32,
        k: usize,
    ) -> Vec<SegmentHit> {
        top_segments_of(&self.video_frames, &self.records, class, window, k)
    }

    /// Similarity: k nearest tracklets to `track` by embedding
    /// distance (self excluded).
    pub fn similar(&self, track: u32, k: usize) -> Result<Vec<(u32, f32)>> {
        if track as usize >= self.records.len() {
            return Err(Error::NotFound(format!("tracklet {track} not in index")));
        }
        let query = self.records[track as usize].quant.dequantize();
        let mut hits = self.graph.search(&query, k + 1);
        hits.retain(|&(id, _)| id != track);
        hits.truncate(k);
        Ok(hits)
    }

    /// Raw nearest-neighbor search over an arbitrary embedding.
    pub fn nearest(&self, embedding: &[f32], k: usize) -> Vec<(u32, f32)> {
        self.graph.search(embedding, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Quantized;
    use crate::record::presence_bitset;

    fn make_record(id: u32, video: u32, class: ObjectClass, frames: &[u32], bias: f32) -> TrackRecord {
        let first = *frames.first().unwrap();
        let last = *frames.last().unwrap();
        let values: Vec<f32> = (0..EMBED_DIM).map(|i| bias + i as f32 * 0.01).collect();
        TrackRecord {
            id,
            video,
            class,
            first_frame: first,
            last_frame: last,
            presence: presence_bitset(first, last, frames),
            quant: Quantized::quantize(&values).unwrap(),
        }
    }

    fn tiny_index() -> SemanticIndex {
        let mut video_frames = BTreeMap::new();
        video_frames.insert(0, 24u32);
        video_frames.insert(2, 24u32);
        let records = vec![
            make_record(0, 0, ObjectClass::Vehicle, &[0, 1, 2, 3], 0.0),
            make_record(1, 0, ObjectClass::Vehicle, &[2, 3, 8, 9], 0.05),
            make_record(2, 0, ObjectClass::Pedestrian, &[0, 1, 2], 0.9),
            make_record(3, 2, ObjectClass::Vehicle, &[16, 17, 18, 19, 20], 0.5),
        ];
        let bytes = SemanticIndex::to_sidecar_bytes(77, &video_frames, &records);
        SemanticIndex::from_sidecar_bytes(&bytes).unwrap()
    }

    #[test]
    fn sidecar_round_trip_and_byte_determinism() {
        let idx = tiny_index();
        let again = SemanticIndex::to_sidecar_bytes(
            idx.seed(),
            idx.video_frames(),
            idx.records(),
        );
        let twice = SemanticIndex::to_sidecar_bytes(
            idx.seed(),
            idx.video_frames(),
            idx.records(),
        );
        assert_eq!(again, twice);
        let reloaded = SemanticIndex::from_sidecar_bytes(&again).unwrap();
        assert_eq!(reloaded.records(), idx.records());
        assert_eq!(reloaded.seed(), 77);
    }

    #[test]
    fn count_distinct_filters() {
        let idx = tiny_index();
        assert_eq!(idx.count_distinct(None, None), 4);
        assert_eq!(idx.count_distinct(Some(ObjectClass::Vehicle), None), 3);
        assert_eq!(idx.count_distinct(Some(ObjectClass::Pedestrian), None), 1);
        assert_eq!(idx.count_distinct(Some(ObjectClass::Vehicle), Some(0)), 2);
        assert_eq!(idx.count_distinct(None, Some(2)), 1);
    }

    #[test]
    fn top_segments_uses_exact_presence() {
        let idx = tiny_index();
        let hits = idx.top_segments(Some(ObjectClass::Vehicle), 8, 3);
        // Segment (0,0): records 0 and 1 → 2. Record 1 has a gap over
        // frames 4..7 but reappears at 8 → segment (0,1) counts 1.
        // Segment (2,2): record 3 → 1.
        assert_eq!(hits[0], SegmentHit { video: 0, segment: 0, count: 2 });
        assert_eq!(hits[1], SegmentHit { video: 0, segment: 1, count: 1 });
        assert_eq!(hits[2], SegmentHit { video: 2, segment: 2, count: 1 });
    }

    #[test]
    fn similarity_excludes_self_and_prefers_near_embeddings() {
        let idx = tiny_index();
        let hits = idx.similar(0, 2).unwrap();
        assert_eq!(hits[0].0, 1, "nearest to record 0 should be record 1");
        assert!(hits.iter().all(|&(id, _)| id != 0));
        assert!(idx.similar(99, 2).is_err());
    }

    #[test]
    fn corrupt_sidecar_fails_closed() {
        let idx = tiny_index();
        let bytes =
            SemanticIndex::to_sidecar_bytes(idx.seed(), idx.video_frames(), idx.records());
        for at in [0usize, 7, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(SemanticIndex::from_sidecar_bytes(&bad).is_err(), "flip at {at}");
        }
        assert!(SemanticIndex::from_sidecar_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn record_referencing_unknown_video_is_rejected() {
        let mut video_frames = BTreeMap::new();
        video_frames.insert(0, 24u32);
        let records = vec![make_record(0, 5, ObjectClass::Vehicle, &[0, 1], 0.0)];
        let bytes = SemanticIndex::to_sidecar_bytes(1, &video_frames, &records);
        assert!(SemanticIndex::from_sidecar_bytes(&bytes).is_err());
    }
}
