//! Arc-length-parameterized polyline paths.
//!
//! Vehicles and pedestrians in Visual City move along road-network
//! paths at (piecewise-)constant speed; the simulator asks "where is
//! this entity after it has travelled `s` meters?", which is exactly
//! the query a cumulative-arc-length polyline answers.

use crate::vec::Vec2;

/// A polyline with precomputed cumulative arc lengths.
#[derive(Debug, Clone)]
pub struct Path {
    points: Vec<Vec2>,
    /// `cumulative[i]` = distance from the start to `points[i]`.
    cumulative: Vec<f32>,
}

impl Path {
    /// Build a path from waypoints. Consecutive duplicate points are
    /// tolerated (they contribute zero length). Needs at least two
    /// points to have direction; a single point is a degenerate path.
    pub fn new(points: Vec<Vec2>) -> Self {
        assert!(!points.is_empty(), "a path needs at least one point");
        let mut cumulative = Vec::with_capacity(points.len());
        let mut total = 0.0f32;
        cumulative.push(0.0);
        for w in points.windows(2) {
            total += w[0].distance(w[1]);
            cumulative.push(total);
        }
        Self { points, cumulative }
    }

    /// Total length in meters.
    pub fn length(&self) -> f32 {
        *self.cumulative.last().unwrap()
    }

    /// The waypoints.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Position after travelling `s` meters from the start. `s` is
    /// clamped to `[0, length]`.
    pub fn position_at(&self, s: f32) -> Vec2 {
        let s = s.clamp(0.0, self.length());
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if i + 1 >= self.points.len() {
            return *self.points.last().unwrap();
        }
        let seg = self.cumulative[i + 1] - self.cumulative[i];
        if seg <= 1e-9 {
            return self.points[i];
        }
        let t = (s - self.cumulative[i]) / seg;
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Unit travel direction at arc length `s` (direction of the
    /// containing segment). Falls back to +x on degenerate paths.
    pub fn direction_at(&self, s: f32) -> Vec2 {
        let s = s.clamp(0.0, self.length());
        let mut i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        // Skip zero-length segments and the path end.
        while i + 1 < self.points.len()
            && (self.cumulative[i + 1] - self.cumulative[i]) <= 1e-9
        {
            i += 1;
        }
        if i + 1 >= self.points.len() {
            if self.points.len() >= 2 {
                let n = self.points.len();
                return (self.points[n - 1] - self.points[n - 2])
                    .normalized()
                    .unwrap_or(Vec2::new(1.0, 0.0));
            }
            return Vec2::new(1.0, 0.0);
        }
        (self.points[i + 1] - self.points[i])
            .normalized()
            .unwrap_or(Vec2::new(1.0, 0.0))
    }

    /// Position on a looped version of the path: arc length wraps
    /// modulo the total length. Vehicles circulate on closed loops.
    pub fn position_looped(&self, s: f32) -> Vec2 {
        let len = self.length();
        if len <= 1e-9 {
            return self.points[0];
        }
        self.position_at(s.rem_euclid(len))
    }

    /// Direction on a looped version of the path.
    pub fn direction_looped(&self, s: f32) -> Vec2 {
        let len = self.length();
        if len <= 1e-9 {
            return Vec2::new(1.0, 0.0);
        }
        self.direction_at(s.rem_euclid(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> Path {
        Path::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0), Vec2::new(10.0, 10.0)])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_path().length(), 20.0);
    }

    #[test]
    fn position_interpolates() {
        let p = l_path();
        assert_eq!(p.position_at(0.0), Vec2::new(0.0, 0.0));
        assert_eq!(p.position_at(5.0), Vec2::new(5.0, 0.0));
        assert_eq!(p.position_at(10.0), Vec2::new(10.0, 0.0));
        assert_eq!(p.position_at(15.0), Vec2::new(10.0, 5.0));
        assert_eq!(p.position_at(20.0), Vec2::new(10.0, 10.0));
    }

    #[test]
    fn position_clamps() {
        let p = l_path();
        assert_eq!(p.position_at(-5.0), Vec2::new(0.0, 0.0));
        assert_eq!(p.position_at(100.0), Vec2::new(10.0, 10.0));
    }

    #[test]
    fn direction_follows_segments() {
        let p = l_path();
        assert_eq!(p.direction_at(5.0), Vec2::new(1.0, 0.0));
        assert_eq!(p.direction_at(15.0), Vec2::new(0.0, 1.0));
        // At the very end the direction of the final segment holds.
        assert_eq!(p.direction_at(20.0), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn looping_wraps() {
        let p = l_path();
        assert_eq!(p.position_looped(25.0), p.position_at(5.0));
        assert_eq!(p.position_looped(-5.0), p.position_at(15.0));
        assert_eq!(p.direction_looped(45.0), p.direction_at(5.0));
    }

    #[test]
    fn duplicate_points_are_tolerated() {
        let p = Path::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
        ]);
        assert_eq!(p.length(), 4.0);
        assert_eq!(p.position_at(2.0), Vec2::new(2.0, 0.0));
        assert_eq!(p.direction_at(0.0), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn degenerate_single_point() {
        let p = Path::new(vec![Vec2::new(3.0, 3.0)]);
        assert_eq!(p.length(), 0.0);
        assert_eq!(p.position_looped(17.0), Vec2::new(3.0, 3.0));
    }
}

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized invariant checks (the former proptest suite),
    //! driven by the in-repo deterministic generator.
    use super::*;
    use vr_base::VrRng;

    fn arb_path(rng: &mut VrRng) -> Path {
        let n = rng.range(2, 11);
        Path::new(
            (0..n)
                .map(|_| Vec2::new(rng.range_f32(-100.0, 100.0), rng.range_f32(-100.0, 100.0)))
                .collect(),
        )
    }

    #[test]
    fn prop_position_is_on_or_between_waypoints() {
        let mut rng = VrRng::seed_from(0x9a74_0001);
        for _ in 0..200 {
            let p = arb_path(&mut rng);
            let t = rng.range_f32(0.0, 1.0);
            let s = t * p.length();
            let pos = p.position_at(s);
            // The position lies within the waypoints' bounding box.
            let (mut min_x, mut min_y) = (f32::MAX, f32::MAX);
            let (mut max_x, mut max_y) = (f32::MIN, f32::MIN);
            for w in p.points() {
                min_x = min_x.min(w.x);
                max_x = max_x.max(w.x);
                min_y = min_y.min(w.y);
                max_y = max_y.max(w.y);
            }
            assert!(pos.x >= min_x - 1e-3 && pos.x <= max_x + 1e-3);
            assert!(pos.y >= min_y - 1e-3 && pos.y <= max_y + 1e-3);
        }
    }

    #[test]
    fn prop_arc_length_is_monotone() {
        let mut rng = VrRng::seed_from(0x9a74_0002);
        for _ in 0..200 {
            let p = arb_path(&mut rng);
            let a = rng.range_f32(0.0, 1.0);
            let b = rng.range_f32(0.0, 1.0);
            // Distance travelled along the path between two arc
            // lengths never exceeds their difference (paths don't
            // teleport).
            let (lo, hi) = (a.min(b) * p.length(), a.max(b) * p.length());
            let d = p.position_at(lo).distance(p.position_at(hi));
            assert!(d <= (hi - lo) + 1e-3, "{d} > {}", hi - lo);
        }
    }

    #[test]
    fn prop_direction_is_unit() {
        let mut rng = VrRng::seed_from(0x9a74_0003);
        for _ in 0..200 {
            let p = arb_path(&mut rng);
            let t = rng.range_f32(0.0, 1.0);
            let d = p.direction_at(t * p.length());
            assert!((d.length() - 1.0).abs() < 1e-4);
        }
    }
}
