//! Camera models: pinhole perspective (traffic cameras and panoramic
//! rig faces) and the equirectangular mapping used for 360° video
//! (Q9/Q10).

use crate::vec::Vec3;

/// A pinhole perspective camera.
///
/// Orientation is given by `yaw` (radians counter-clockwise from the
/// +x axis, about the world z-axis) and `pitch` (radians above the
/// horizon; negative looks down — traffic cameras are mounted 10–20 m
/// up and pitch downward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// World-space position of the optical center.
    pub position: Vec3,
    /// Heading in radians (0 = +x / east).
    pub yaw: f32,
    /// Elevation in radians (0 = level, negative = looking down).
    pub pitch: f32,
    /// Horizontal field of view in degrees. Panoramic rig faces use
    /// 120° (§3.1); traffic cameras use a conventional 90°.
    pub hfov_deg: f32,
}

impl Camera {
    /// Construct a camera.
    pub fn new(position: Vec3, yaw: f32, pitch: f32, hfov_deg: f32) -> Self {
        Self { position, yaw, pitch, hfov_deg }
    }

    /// Unit forward vector.
    pub fn forward(&self) -> Vec3 {
        let (sy, cy) = self.yaw.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        Vec3::new(cy * cp, sy * cp, sp)
    }

    /// Unit right vector (horizontal, perpendicular to forward).
    pub fn right(&self) -> Vec3 {
        let (sy, cy) = self.yaw.sin_cos();
        Vec3::new(sy, -cy, 0.0)
    }

    /// Unit up vector (completes the right-handed camera basis).
    pub fn up(&self) -> Vec3 {
        self.right().cross(self.forward())
    }

    /// Transform a world-space point into camera space
    /// (x right, y down, z forward).
    pub fn world_to_camera(&self, p: Vec3) -> Vec3 {
        let rel = p - self.position;
        Vec3::new(rel.dot(self.right()), -rel.dot(self.up()), rel.dot(self.forward()))
    }

    /// Focal length in pixels for a frame `width` pixels wide.
    pub fn focal_px(&self, width: u32) -> f32 {
        let half = (self.hfov_deg.to_radians() / 2.0).tan();
        width as f32 / (2.0 * half)
    }

    /// Project a world point to pixel coordinates on a `width`×`height`
    /// frame. Returns `(x, y, depth)`; `None` if the point is behind
    /// the camera. The returned pixel may lie outside the frame (useful
    /// for clipping boxes that straddle the frame edge).
    pub fn project(&self, p: Vec3, width: u32, height: u32) -> Option<(f32, f32, f32)> {
        let c = self.world_to_camera(p);
        if c.z <= 1e-4 {
            return None;
        }
        let f = self.focal_px(width);
        let x = width as f32 / 2.0 + f * c.x / c.z;
        let y = height as f32 / 2.0 + f * c.y / c.z;
        Some((x, y, c.z))
    }

    /// The world-space ray direction through pixel `(x, y)`.
    pub fn pixel_ray(&self, x: f32, y: f32, width: u32, height: u32) -> Vec3 {
        let f = self.focal_px(width);
        let cx = (x - width as f32 / 2.0) / f;
        let cy = (y - height as f32 / 2.0) / f;
        (self.forward() + self.right() * cx - self.up() * cy)
            .normalized()
            .unwrap_or(Vec3::UP)
    }

    /// Whether any part of a sphere at `center` with `radius` could be
    /// visible (coarse frustum test used for culling).
    pub fn sphere_visible(&self, center: Vec3, radius: f32, width: u32, height: u32) -> bool {
        let c = self.world_to_camera(center);
        if c.z < -radius {
            return false;
        }
        if c.z <= 0.0 {
            return true; // straddles the image plane; keep it
        }
        let f = self.focal_px(width);
        let margin = radius / c.z * f;
        let x = width as f32 / 2.0 + f * c.x / c.z;
        let y = height as f32 / 2.0 + f * c.y / c.z;
        x >= -margin
            && x <= width as f32 + margin
            && y >= -margin
            && y <= height as f32 + margin
    }
}

/// The equirectangular projection used for 360° panoramic video
/// (§4.2.2): longitude maps linearly to `x`, latitude to `y`.
#[derive(Debug, Clone, Copy)]
pub struct Equirect {
    pub width: u32,
    pub height: u32,
}

impl Equirect {
    /// Construct a mapping for a `width`×`height` equirectangular frame
    /// (conventionally 2:1).
    pub fn new(width: u32, height: u32) -> Self {
        Self { width, height }
    }

    /// Direction (unit vector) corresponding to pixel `(x, y)`.
    /// `x = 0` is longitude −π (due west of the seam), the frame center
    /// is longitude 0 (the +x axis); `y = 0` is the zenith.
    pub fn pixel_to_dir(&self, x: f32, y: f32) -> Vec3 {
        let lon = (x / self.width as f32 - 0.5) * 2.0 * std::f32::consts::PI;
        let lat = (0.5 - y / self.height as f32) * std::f32::consts::PI;
        let (sl, cl) = lat.sin_cos();
        let (so, co) = lon.sin_cos();
        Vec3::new(cl * co, cl * so, sl)
    }

    /// Pixel corresponding to a direction (inverse of
    /// [`pixel_to_dir`](Self::pixel_to_dir)).
    pub fn dir_to_pixel(&self, d: Vec3) -> (f32, f32) {
        let lon = d.y.atan2(d.x);
        let lat = (d.z / d.length().max(1e-12)).asin();
        let x = (lon / (2.0 * std::f32::consts::PI) + 0.5) * self.width as f32;
        let y = (0.5 - lat / std::f32::consts::PI) * self.height as f32;
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, eps: f32) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn forward_follows_yaw_and_pitch() {
        let c = Camera::new(Vec3::ZERO, 0.0, 0.0, 90.0);
        assert!(close(c.forward().x, 1.0, 1e-6));
        let c = Camera::new(Vec3::ZERO, std::f32::consts::FRAC_PI_2, 0.0, 90.0);
        assert!(close(c.forward().y, 1.0, 1e-6));
        let c = Camera::new(Vec3::ZERO, 0.0, -std::f32::consts::FRAC_PI_2, 90.0);
        assert!(close(c.forward().z, -1.0, 1e-6));
    }

    #[test]
    fn basis_is_orthonormal() {
        let c = Camera::new(Vec3::new(3.0, -2.0, 10.0), 1.1, -0.4, 120.0);
        let (f, r, u) = (c.forward(), c.right(), c.up());
        assert!(close(f.length(), 1.0, 1e-5));
        assert!(close(r.length(), 1.0, 1e-5));
        assert!(close(u.length(), 1.0, 1e-5));
        assert!(close(f.dot(r), 0.0, 1e-5));
        assert!(close(f.dot(u), 0.0, 1e-5));
        assert!(close(r.dot(u), 0.0, 1e-5));
    }

    #[test]
    fn center_pixel_is_forward() {
        let c = Camera::new(Vec3::ZERO, 0.3, -0.2, 90.0);
        let p = c.position + c.forward() * 10.0;
        let (x, y, z) = c.project(p, 640, 480).unwrap();
        assert!(close(x, 320.0, 0.01));
        assert!(close(y, 240.0, 0.01));
        assert!(close(z, 10.0, 1e-3));
    }

    #[test]
    fn behind_camera_is_rejected() {
        let c = Camera::new(Vec3::ZERO, 0.0, 0.0, 90.0);
        assert!(c.project(Vec3::new(-5.0, 0.0, 0.0), 640, 480).is_none());
    }

    #[test]
    fn rightward_point_lands_right_of_center() {
        let c = Camera::new(Vec3::ZERO, 0.0, 0.0, 90.0);
        // forward = +x; right = -y (since right = (sin 0, -cos 0, 0)).
        let p = Vec3::new(10.0, -3.0, 0.0);
        let (x, _, _) = c.project(p, 640, 480).unwrap();
        assert!(x > 320.0);
    }

    #[test]
    fn pixel_ray_inverts_projection() {
        let c = Camera::new(Vec3::new(1.0, 2.0, 8.0), 0.7, -0.5, 100.0);
        let target = Vec3::new(20.0, 14.0, 0.0);
        let (x, y, _) = c.project(target, 800, 600).unwrap();
        let ray = c.pixel_ray(x, y, 800, 600);
        let want = (target - c.position).normalized().unwrap();
        assert!(close(ray.dot(want), 1.0, 1e-4));
    }

    #[test]
    fn sphere_culling() {
        let c = Camera::new(Vec3::ZERO, 0.0, 0.0, 90.0);
        assert!(c.sphere_visible(Vec3::new(10.0, 0.0, 0.0), 1.0, 640, 480));
        assert!(!c.sphere_visible(Vec3::new(-10.0, 0.0, 0.0), 1.0, 640, 480));
        // Off-axis but large sphere still overlaps the frustum.
        assert!(c.sphere_visible(Vec3::new(5.0, 20.0, 0.0), 30.0, 640, 480));
    }

    #[test]
    fn equirect_round_trip() {
        let eq = Equirect::new(1024, 512);
        for (x, y) in [(100.0, 100.0), (512.0, 256.0), (900.0, 30.0), (10.0, 500.0)] {
            let d = eq.pixel_to_dir(x, y);
            assert!(close(d.length(), 1.0, 1e-5));
            let (px, py) = eq.dir_to_pixel(d);
            assert!(close(px, x, 0.1), "x {px} vs {x}");
            assert!(close(py, y, 0.1), "y {py} vs {y}");
        }
    }

    #[test]
    fn equirect_center_is_plus_x() {
        let eq = Equirect::new(1024, 512);
        let d = eq.pixel_to_dir(512.0, 256.0);
        assert!(close(d.x, 1.0, 1e-5));
    }
}
