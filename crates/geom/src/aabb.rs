//! 3D axis-aligned bounding boxes.

use crate::vec::Vec3;

/// An axis-aligned box in world space, described by its min/max corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb3 {
    /// Construct from two opposite corners (in any order).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Self {
            min: Vec3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Vec3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// A box centered at `c` with full extents `(sx, sy, sz)`.
    pub fn centered(c: Vec3, sx: f32, sy: f32, sz: f32) -> Self {
        let half = Vec3::new(sx / 2.0, sy / 2.0, sz / 2.0);
        Self { min: c - half, max: c + half }
    }

    /// Center point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) / 2.0
    }

    /// Full extents along each axis.
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// The eight corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (a, b) = (self.min, self.max);
        [
            Vec3::new(a.x, a.y, a.z),
            Vec3::new(b.x, a.y, a.z),
            Vec3::new(a.x, b.y, a.z),
            Vec3::new(b.x, b.y, a.z),
            Vec3::new(a.x, a.y, b.z),
            Vec3::new(b.x, a.y, b.z),
            Vec3::new(a.x, b.y, b.z),
            Vec3::new(b.x, b.y, b.z),
        ]
    }

    /// Whether a point lies inside (inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Whether two boxes overlap.
    pub fn intersects(&self, o: &Aabb3) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// Translate by `d`.
    pub fn translated(&self, d: Vec3) -> Aabb3 {
        Aabb3 { min: self.min + d, max: self.max + d }
    }

    /// Ray–box intersection (slab method): the smallest `t ≥ 0` with
    /// `origin + dir·t` inside the box, if one exists with `t <= tmax`.
    /// Used for occlusion tests in ground-truth generation.
    pub fn ray_hit(&self, origin: Vec3, dir: Vec3, tmax: f32) -> Option<f32> {
        let mut t0 = 0.0f32;
        let mut t1 = tmax;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (origin.x, dir.x, self.min.x, self.max.x),
                1 => (origin.y, dir.y, self.min.y, self.max.y),
                _ => (origin.z, dir.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-9 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some(t0)
    }

    /// The box rotated by `yaw` radians about its center's vertical
    /// axis, then re-wrapped in an axis-aligned box (conservative).
    pub fn yawed(&self, yaw: f32) -> Aabb3 {
        let c = self.center();
        let mut min = Vec3::new(f32::MAX, f32::MAX, self.min.z);
        let mut max = Vec3::new(f32::MIN, f32::MIN, self.max.z);
        for corner in self.corners() {
            let rel = (corner - c).ground().rotated(yaw);
            let p = c.ground() + rel;
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Aabb3 { min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orders_corners() {
        let b = Aabb3::new(Vec3::new(1.0, 5.0, -1.0), Vec3::new(0.0, 2.0, 3.0));
        assert_eq!(b.min, Vec3::new(0.0, 2.0, -1.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn centered_round_trip() {
        let b = Aabb3::centered(Vec3::new(1.0, 2.0, 3.0), 4.0, 2.0, 6.0);
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.size(), Vec3::new(4.0, 2.0, 6.0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = Aabb3::centered(Vec3::ZERO, 2.0, 2.0, 2.0);
        assert!(a.contains(Vec3::ZERO));
        assert!(a.contains(Vec3::new(1.0, 1.0, 1.0))); // inclusive boundary
        assert!(!a.contains(Vec3::new(1.1, 0.0, 0.0)));
        let b = a.translated(Vec3::new(1.5, 0.0, 0.0));
        assert!(a.intersects(&b));
        let c = a.translated(Vec3::new(5.0, 0.0, 0.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn corners_count_and_extremes() {
        let b = Aabb3::centered(Vec3::ZERO, 2.0, 2.0, 2.0);
        let corners = b.corners();
        assert_eq!(corners.len(), 8);
        assert!(corners.iter().any(|c| *c == b.min));
        assert!(corners.iter().any(|c| *c == b.max));
    }

    #[test]
    fn ray_hits_and_misses() {
        let b = Aabb3::centered(Vec3::new(10.0, 0.0, 0.0), 2.0, 2.0, 2.0);
        // Straight-on hit at t = 9 (box spans x 9..11).
        let t = b.ray_hit(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 100.0).unwrap();
        assert!((t - 9.0).abs() < 1e-4);
        // Pointing away: miss.
        assert!(b.ray_hit(Vec3::ZERO, Vec3::new(-1.0, 0.0, 0.0), 100.0).is_none());
        // Offset parallel ray: miss.
        assert!(b
            .ray_hit(Vec3::new(0.0, 5.0, 0.0), Vec3::new(1.0, 0.0, 0.0), 100.0)
            .is_none());
        // tmax shorter than the hit distance: miss.
        assert!(b.ray_hit(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 5.0).is_none());
        // Origin inside the box: hit at t = 0.
        let t = b
            .ray_hit(Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 100.0)
            .unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn yaw_quarter_turn_swaps_footprint() {
        // A 4x2 footprint yawed 90° becomes (conservatively) 2x4.
        let b = Aabb3::centered(Vec3::ZERO, 4.0, 2.0, 1.0);
        let r = b.yawed(std::f32::consts::FRAC_PI_2);
        let s = r.size();
        assert!((s.x - 2.0).abs() < 1e-4, "x extent {}", s.x);
        assert!((s.y - 4.0).abs() < 1e-4, "y extent {}", s.y);
        assert!((s.z - 1.0).abs() < 1e-6);
    }
}
