//! Pixel-space rectangles and overlap metrics.
//!
//! Semantic validation (§3.2, §4.1) compares VDBMS-reported bounding
//! boxes with ground-truth boxes using the Jaccard distance with the
//! PASCAL VOC threshold `ε = 0.5`.

/// A half-open axis-aligned rectangle in pixel coordinates:
/// `x0 <= x < x1`, `y0 <= y < y1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    pub x0: i32,
    pub y0: i32,
    pub x1: i32,
    pub y1: i32,
}

impl Rect {
    /// Construct from corner coordinates (not required to be ordered;
    /// the result is normalized so `x0 <= x1`, `y0 <= y1`).
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Self { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// Construct from origin and size.
    pub fn from_origin_size(x: i32, y: i32, w: u32, h: u32) -> Self {
        Self { x0: x, y0: y, x1: x + w as i32, y1: y + h as i32 }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        (self.x1 - self.x0).max(0) as u32
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        (self.y1 - self.y0).max(0) as u32
    }

    /// Pixel area.
    pub fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// True when the rectangle contains no pixels.
    pub fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    /// Whether the pixel `(x, y)` lies inside.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Intersection; possibly empty.
    pub fn intersect(&self, o: &Rect) -> Rect {
        Rect {
            x0: self.x0.max(o.x0),
            y0: self.y0.max(o.y0),
            x1: self.x1.min(o.x1),
            y1: self.y1.min(o.y1),
        }
    }

    /// Smallest rectangle containing both.
    pub fn union_bounds(&self, o: &Rect) -> Rect {
        if self.is_empty() {
            return *o;
        }
        if o.is_empty() {
            return *self;
        }
        Rect {
            x0: self.x0.min(o.x0),
            y0: self.y0.min(o.y0),
            x1: self.x1.max(o.x1),
            y1: self.y1.max(o.y1),
        }
    }

    /// Intersection-over-union in `[0, 1]`. Empty∪empty yields 0.
    pub fn iou(&self, o: &Rect) -> f64 {
        let inter = self.intersect(o);
        if inter.is_empty() {
            return 0.0;
        }
        let i = inter.area() as f64;
        let u = (self.area() + o.area()) as f64 - i;
        if u <= 0.0 {
            0.0
        } else {
            i / u
        }
    }

    /// Jaccard distance `1 - IoU`; the semantic-validation metric.
    pub fn jaccard_distance(&self, o: &Rect) -> f64 {
        1.0 - self.iou(o)
    }

    /// Clip to the frame `0..w, 0..h`.
    pub fn clipped(&self, w: u32, h: u32) -> Rect {
        self.intersect(&Rect::from_origin_size(0, 0, w, h))
    }

    /// Translate by `(dx, dy)`.
    pub fn shifted(&self, dx: i32, dy: i32) -> Rect {
        Rect { x0: self.x0 + dx, y0: self.y0 + dy, x1: self.x1 + dx, y1: self.y1 + dy }
    }

    /// Grow by `m` pixels on every side (negative shrinks).
    pub fn inflated(&self, m: i32) -> Rect {
        Rect::new(self.x0 - m, self.y0 - m, self.x1 + m, self.y1 + m)
    }

    /// Center point.
    pub fn center(&self) -> (f32, f32) {
        ((self.x0 + self.x1) as f32 / 2.0, (self.y0 + self.y1) as f32 / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect { x0: 0, y0: 5, x1: 10, y1: 20 });
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
    }

    #[test]
    fn contains_half_open() {
        let r = Rect::from_origin_size(0, 0, 4, 4);
        assert!(r.contains(0, 0));
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 3));
        assert!(!r.contains(-1, 0));
    }

    #[test]
    fn iou_identical_is_one() {
        let r = Rect::from_origin_size(5, 5, 10, 10);
        assert_eq!(r.iou(&r), 1.0);
        assert_eq!(r.jaccard_distance(&r), 0.0);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = Rect::from_origin_size(0, 0, 5, 5);
        let b = Rect::from_origin_size(10, 10, 5, 5);
        assert_eq!(a.iou(&b), 0.0);
        assert_eq!(a.jaccard_distance(&b), 1.0);
    }

    #[test]
    fn iou_half_overlap() {
        // a and b each 2x1, overlapping in a 1x1 region: IoU = 1/3.
        let a = Rect::from_origin_size(0, 0, 2, 1);
        let b = Rect::from_origin_size(1, 0, 2, 1);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pascal_voc_threshold_examples() {
        // Shifting a 10x10 box by 2 pixels keeps IoU above 0.5 ...
        let a = Rect::from_origin_size(0, 0, 10, 10);
        assert!(a.jaccard_distance(&a.shifted(2, 0)) < 0.5);
        // ... shifting by 5 pixels pushes the distance past 0.5.
        assert!(a.jaccard_distance(&a.shifted(5, 5)) > 0.5);
    }

    #[test]
    fn clip_and_union() {
        let r = Rect::new(-5, -5, 10, 10).clipped(8, 8);
        assert_eq!(r, Rect::from_origin_size(0, 0, 8, 8));
        let u = Rect::from_origin_size(0, 0, 2, 2)
            .union_bounds(&Rect::from_origin_size(5, 5, 2, 2));
        assert_eq!(u, Rect::new(0, 0, 7, 7));
        // Union with an empty rect returns the other operand.
        let empty = Rect::from_origin_size(0, 0, 0, 0);
        assert_eq!(empty.union_bounds(&r), r);
    }

    #[test]
    fn inflate_and_center() {
        let r = Rect::from_origin_size(2, 2, 4, 4).inflated(1);
        assert_eq!(r, Rect::new(1, 1, 7, 7));
        assert_eq!(r.center(), (4.0, 4.0));
    }
}

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized invariant checks (the former proptest suite),
    //! driven by the in-repo deterministic generator.
    use super::*;
    use vr_base::VrRng;

    fn arb_rect(rng: &mut VrRng) -> Rect {
        let x = rng.range_i64(-100, 100) as i32;
        let y = rng.range_i64(-100, 100) as i32;
        let w = rng.range(1, 120) as u32;
        let h = rng.range(1, 120) as u32;
        Rect::from_origin_size(x, y, w, h)
    }

    #[test]
    fn prop_iou_is_symmetric_and_bounded() {
        let mut rng = VrRng::seed_from(0x9ec7_0001);
        for _ in 0..256 {
            let (a, b) = (arb_rect(&mut rng), arb_rect(&mut rng));
            let ab = a.iou(&b);
            let ba = b.iou(&a);
            assert!((ab - ba).abs() < 1e-12, "{a:?} {b:?}");
            assert!((0.0..=1.0).contains(&ab), "{a:?} {b:?}");
        }
    }

    #[test]
    fn prop_intersection_within_both() {
        let mut rng = VrRng::seed_from(0x9ec7_0002);
        for _ in 0..256 {
            let (a, b) = (arb_rect(&mut rng), arb_rect(&mut rng));
            let i = a.intersect(&b);
            if !i.is_empty() {
                assert!(i.x0 >= a.x0 && i.x1 <= a.x1, "{a:?} {b:?}");
                assert!(i.x0 >= b.x0 && i.x1 <= b.x1, "{a:?} {b:?}");
                assert!(i.area() <= a.area());
                assert!(i.area() <= b.area());
            }
        }
    }

    #[test]
    fn prop_union_contains_both() {
        let mut rng = VrRng::seed_from(0x9ec7_0003);
        for _ in 0..256 {
            let (a, b) = (arb_rect(&mut rng), arb_rect(&mut rng));
            let u = a.union_bounds(&b);
            for r in [a, b] {
                assert!(u.x0 <= r.x0 && u.x1 >= r.x1, "{a:?} {b:?}");
                assert!(u.y0 <= r.y0 && u.y1 >= r.y1, "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn prop_clip_never_grows() {
        let mut rng = VrRng::seed_from(0x9ec7_0004);
        for _ in 0..256 {
            let a = arb_rect(&mut rng);
            let w = rng.range(1, 200) as u32;
            let h = rng.range(1, 200) as u32;
            let c = a.clipped(w, h);
            assert!(c.area() <= a.area(), "{a:?} {w}x{h}");
            if !c.is_empty() {
                assert!(c.x0 >= 0 && c.y0 >= 0);
                assert!(c.x1 <= w as i32 && c.y1 <= h as i32);
            }
        }
    }

    #[test]
    fn prop_shift_preserves_area() {
        let mut rng = VrRng::seed_from(0x9ec7_0005);
        for _ in 0..256 {
            let a = arb_rect(&mut rng);
            let dx = rng.range_i64(-50, 50) as i32;
            let dy = rng.range_i64(-50, 50) as i32;
            assert_eq!(a.shifted(dx, dy).area(), a.area());
            // Shifting is invertible.
            assert_eq!(a.shifted(dx, dy).shifted(-dx, -dy), a);
        }
    }

    /// Exhaustive small-input sweep: every pair of 1–3 pixel rects in
    /// a 6×6 grid satisfies the IoU/intersection invariants at once.
    #[test]
    fn exhaustive_small_rect_pairs() {
        let mut rects = Vec::new();
        for x in 0..4i32 {
            for y in 0..4i32 {
                for w in 1..=3u32 {
                    for h in 1..=3u32 {
                        rects.push(Rect::from_origin_size(x, y, w, h));
                    }
                }
            }
        }
        for a in &rects {
            for b in &rects {
                let i = a.intersect(b);
                assert!(i.area() <= a.area().min(b.area()));
                let iou = a.iou(b);
                assert!((0.0..=1.0).contains(&iou));
                if a == b {
                    assert_eq!(iou, 1.0);
                }
            }
        }
    }
}
