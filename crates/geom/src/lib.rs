//! Geometry primitives for the Visual Road stack.
//!
//! The simulator (`vr-scene`) places vehicles, pedestrians, and
//! cameras in a 3D world; the renderer projects them to pixels; the
//! driver validates detections with rectangle overlap metrics. This
//! crate supplies those shared pieces: vectors, axis-aligned boxes,
//! pixel rectangles with IoU/Jaccard, pinhole and equirectangular
//! camera models, and arc-length-parameterized paths.
//!
//! Coordinate conventions:
//! * **World space** is right-handed with `x` east, `y` north, `z` up,
//!   in meters.
//! * **Camera space** has `x` right, `y` down, `z` forward.
//! * **Pixel space** has the origin at the top-left of the frame.

pub mod aabb;
pub mod camera;
pub mod path;
pub mod rect;
pub mod vec;

pub use aabb::Aabb3;
pub use camera::{Camera, Equirect};
pub use path::Path;
pub use rect::Rect;
pub use vec::{Vec2, Vec3};
