//! 2- and 3-component float vectors.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 2D vector (or point) in `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

/// A 3D vector (or point) in `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    pub fn dot(self, o: Vec2) -> f32 {
        self.x * o.x + self.y * o.y
    }

    /// 2D cross product (z-component of the 3D cross of the embeddings).
    pub fn cross(self, o: Vec2) -> f32 {
        self.x * o.y - self.y * o.x
    }

    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero input.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        (len > 1e-12).then(|| self / len)
    }

    /// Rotate counter-clockwise by `angle` radians.
    pub fn rotated(self, angle: f32) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (counter-clockwise).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    pub fn lerp(self, o: Vec2, t: f32) -> Vec2 {
        self + (o - self) * t
    }

    /// Distance to another point.
    pub fn distance(self, o: Vec2) -> f32 {
        (o - self).length()
    }
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// World "up" (z-up convention).
    pub const UP: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Embed a 2D ground-plane point at height `z`.
    pub const fn from_ground(p: Vec2, z: f32) -> Self {
        Self { x: p.x, y: p.y, z }
    }

    /// Drop the height component.
    pub const fn ground(self) -> Vec2 {
        Vec2 { x: self.x, y: self.y }
    }

    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero input.
    pub fn normalized(self) -> Option<Vec3> {
        let len = self.length();
        (len > 1e-12).then(|| self / len)
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }

    /// Distance to another point.
    pub fn distance(self, o: Vec3) -> f32 {
        (o - self).length()
    }
}

macro_rules! impl_vec_ops {
    ($t:ty, $($f:ident),+) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, o: $t) -> $t { Self { $($f: self.$f + o.$f),+ } }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, o: $t) { $(self.$f += o.$f;)+ }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, o: $t) -> $t { Self { $($f: self.$f - o.$f),+ } }
        }
        impl Mul<f32> for $t {
            type Output = $t;
            fn mul(self, s: f32) -> $t { Self { $($f: self.$f * s),+ } }
        }
        impl Div<f32> for $t {
            type Output = $t;
            fn div(self, s: f32) -> $t { Self { $($f: self.$f / s),+ } }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t { Self { $($f: -self.$f),+ } }
        }
    };
}

impl_vec_ops!(Vec2, x, y);
impl_vec_ops!(Vec3, x, y, z);

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn vec2_basics() {
        let a = Vec2::new(3.0, 4.0);
        assert!(close(a.length(), 5.0));
        assert!(close(a.dot(Vec2::new(1.0, 0.0)), 3.0));
        assert!(close(a.cross(Vec2::new(1.0, 0.0)), -4.0));
        let n = a.normalized().unwrap();
        assert!(close(n.length(), 1.0));
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotated(std::f32::consts::FRAC_PI_2);
        assert!(close(r.x, 0.0) && close(r.y, 1.0));
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(close(c.dot(a), 0.0));
        assert!(close(c.dot(b), 0.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn ground_embedding_round_trips() {
        let p = Vec2::new(7.5, -2.0);
        assert_eq!(Vec3::from_ground(p, 3.0).ground(), p);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, 5.0);
        assert_eq!(a + b, Vec2::new(4.0, 7.0));
        assert_eq!(b - a, Vec2::new(2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, 2.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }
}
